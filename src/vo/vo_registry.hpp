// The visual-object registry: hosts VisualObjects and serves remote
// render()/ping() calls (the ORB-and-name-service role of MICO in the
// paper's setup, reduced to what BRISK actually uses).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "net/frame.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "vo/visual_object.hpp"

namespace brisk::vo {

struct VoRegistryStats {
  std::uint64_t renders_dispatched = 0;
  std::uint64_t pings_answered = 0;
  std::uint64_t unknown_object_calls = 0;
  std::uint64_t protocol_errors = 0;
};

class VoRegistry {
 public:
  /// Binds a listener on 127.0.0.1:`port` (0 = ephemeral).
  static Result<std::unique_ptr<VoRegistry>> start(std::uint16_t port);

  /// Registers an object under its name(). The registry keeps a reference.
  /// Thread-safe: may be called while the registry loop runs.
  Status add_object(std::shared_ptr<VisualObject> object);
  Status remove_object(const std::string& name);

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  Status run(TimeMicros cycle_timeout_us = 40'000);
  Status run_for(TimeMicros duration, TimeMicros cycle_timeout_us = 5'000);
  void stop() noexcept { loop_.stop(); }

  [[nodiscard]] const VoRegistryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t object_count() const {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    return objects_.size();
  }

 private:
  explicit VoRegistry(net::TcpListener listener) : listener_(std::move(listener)) {}

  struct Connection {
    net::TcpSocket socket;
    net::FrameReader reader;
  };

  void on_listener_readable();
  void on_connection_readable(int fd);
  Status dispatch(Connection& conn, ByteSpan payload);
  void close_connection(int fd);

  net::TcpListener listener_;
  net::SelectPoller loop_;  // a handful of tool connections: select suffices
  std::map<int, Connection> connections_;
  mutable std::mutex objects_mutex_;  // guards objects_ against the loop thread
  std::map<std::string, std::shared_ptr<VisualObject>> objects_;
  VoRegistryStats stats_;
};

}  // namespace brisk::vo
