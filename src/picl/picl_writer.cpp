#include "picl/picl_writer.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

namespace brisk::picl {

Result<PiclWriter> PiclWriter::open(const std::string& path, PiclOptions options) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status(Errc::io_error, "fopen " + path + ": " + std::strerror(errno));
  }
  return PiclWriter(file, options);
}

PiclWriter::PiclWriter(PiclWriter&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      options_(other.options_),
      records_written_(other.records_written_) {}

PiclWriter& PiclWriter::operator=(PiclWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    options_ = other.options_;
    records_written_ = other.records_written_;
  }
  return *this;
}

PiclWriter::~PiclWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status PiclWriter::write(const sensors::Record& record) {
  if (file_ == nullptr) return Status(Errc::closed, "writer closed");
  const std::string line = to_picl_line(record, options_);
  if (std::fputs(line.c_str(), file_) == EOF || std::fputc('\n', file_) == EOF) {
    return Status(Errc::io_error, "write failed");
  }
  ++records_written_;
  return Status::ok();
}

Status PiclWriter::flush() {
  if (file_ == nullptr) return Status(Errc::closed, "writer closed");
  if (std::fflush(file_) != 0) return Status(Errc::io_error, "fflush failed");
  return Status::ok();
}

Status PiclWriter::close() {
  if (file_ == nullptr) return Status(Errc::closed, "writer already closed");
  const int rc = std::fclose(std::exchange(file_, nullptr));
  if (rc != 0) return Status(Errc::io_error, "fclose failed");
  return Status::ok();
}

}  // namespace brisk::picl
