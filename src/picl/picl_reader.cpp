#include "picl/picl_reader.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.hpp"

namespace brisk::picl {

Result<PiclReader> PiclReader::open(const std::string& path, PiclOptions options) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status(Errc::io_error, "fopen " + path + ": " + std::strerror(errno));
  }
  return PiclReader(file, options);
}

PiclReader::PiclReader(PiclReader&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      options_(other.options_),
      lines_read_(other.lines_read_),
      partial_tail_(other.partial_tail_) {}

PiclReader& PiclReader::operator=(PiclReader&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    options_ = other.options_;
    lines_read_ = other.lines_read_;
    partial_tail_ = other.partial_tail_;
  }
  return *this;
}

PiclReader::~PiclReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::optional<sensors::Record>> PiclReader::next() {
  if (file_ == nullptr) return Status(Errc::closed, "reader closed");
  partial_tail_ = false;
  std::string line;
  char chunk[512];
  for (;;) {
    line.clear();
    bool terminated = false;
    for (;;) {
      if (std::fgets(chunk, sizeof chunk, file_) == nullptr) {
        if (line.empty()) {
          // Clear the EOF latch so a follow-style reader sees appended data
          // on its next call instead of a sticky end-of-file.
          std::clearerr(file_);
          return std::optional<sensors::Record>{};
        }
        break;
      }
      line += chunk;
      if (!line.empty() && line.back() == '\n') {
        line.pop_back();
        terminated = true;
        break;
      }
    }
    if (!terminated) {
      // The file ends mid-line: the writer has not finished this record yet
      // (PiclWriter always terminates lines). Treat it as end-of-stream and
      // rewind so a follow-style reader can retry once the line completes.
      partial_tail_ = true;
      std::clearerr(file_);
      (void)std::fseek(file_, -static_cast<long>(line.size()), SEEK_CUR);
      return std::optional<sensors::Record>{};
    }
    ++lines_read_;
    const std::string_view content = trim(line);
    if (content.empty() || content.front() == '#') {
      if (std::feof(file_) != 0) return std::optional<sensors::Record>{};
      continue;
    }
    auto record = from_picl_line(content, options_);
    if (!record) return record.status();
    return std::optional<sensors::Record>{std::move(record).value()};
  }
}

Result<std::vector<sensors::Record>> PiclReader::read_all() {
  std::vector<sensors::Record> out;
  for (;;) {
    auto record = next();
    if (!record) return record.status();
    if (!record.value().has_value()) return out;
    out.push_back(std::move(*record.value()));
  }
}

}  // namespace brisk::picl
