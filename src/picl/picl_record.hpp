// PICL-style ASCII trace records.
//
// The ISM "may log instrumentation data to trace files in the PICL ASCII
// format ... with the time-stamps either in the UTC format or as the
// (floating-point) number of seconds since the ISM was run", and remote
// visual objects receive records "as PICL strings".
//
// We implement the new-PICL line shape (record type, event, time, node,
// then data fields) with one BRISK extension: data fields carry their
// dynamic type tag (TYPE=value) so a trace round-trips losslessly through
// ASCII — plain PICL integer fields would flatten BRISK's dynamic typing.
//
//   <rectype> <event(sensor id)> <time> <node> <nfields> [TYPE=value]...
//
// rectype 2 = event data record (the only type BRISK emits today; the
// reader accepts and preserves other rectypes for foreign traces).
#pragma once

#include <string>
#include <string_view>

#include "common/error.hpp"
#include "sensors/record.hpp"

namespace brisk::picl {

inline constexpr int kEventRecordType = 2;

enum class TimestampMode {
  utc_micros,       // integer microseconds of UTC
  seconds_from_epoch,  // "%.6f" seconds since the ISM started
};

struct PiclOptions {
  TimestampMode mode = TimestampMode::seconds_from_epoch;
  /// ISM start time; only used (and required) in seconds_from_epoch mode.
  TimeMicros epoch_us = 0;
};

/// Renders one record as a PICL line (no trailing newline).
std::string to_picl_line(const sensors::Record& record, const PiclOptions& options);

/// Parses one PICL line back into a record.
Result<sensors::Record> from_picl_line(std::string_view line, const PiclOptions& options);

}  // namespace brisk::picl
