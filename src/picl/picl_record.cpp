#include "picl/picl_record.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/string_util.hpp"

namespace brisk::picl {

using sensors::Field;
using sensors::FieldType;
using sensors::Record;

namespace {

std::string render_time(TimeMicros ts, const PiclOptions& options) {
  char buf[48];
  if (options.mode == TimestampMode::utc_micros) {
    std::snprintf(buf, sizeof buf, "%" PRId64, ts);
  } else {
    const double seconds = static_cast<double>(ts - options.epoch_us) / 1e6;
    std::snprintf(buf, sizeof buf, "%.6f", seconds);
  }
  return buf;
}

Result<TimeMicros> parse_time(std::string_view text, const PiclOptions& options) {
  if (options.mode == TimestampMode::utc_micros) {
    auto v = parse_int(text);
    if (!v) return Status(Errc::malformed, "bad UTC timestamp");
    return TimeMicros{*v};
  }
  auto v = parse_double(text);
  if (!v) return Status(Errc::malformed, "bad seconds timestamp");
  return static_cast<TimeMicros>(*v * 1e6 + (*v >= 0 ? 0.5 : -0.5)) + options.epoch_us;
}

Result<FieldType> field_type_from_name(std::string_view name) {
  for (std::uint8_t raw = 0; raw < sensors::kFieldTypeCount; ++raw) {
    const auto type = static_cast<FieldType>(raw);
    if (name == field_type_name(type)) return type;
  }
  return Status(Errc::malformed, "unknown field type name");
}

Result<Field> parse_field(std::string_view token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos) return Status(Errc::malformed, "field missing '='");
  auto type = field_type_from_name(token.substr(0, eq));
  if (!type) return type.status();
  const std::string_view value = token.substr(eq + 1);

  switch (type.value()) {
    case FieldType::x_i8:
    case FieldType::x_i16:
    case FieldType::x_i32:
    case FieldType::x_i64:
    case FieldType::x_ts: {
      auto v = parse_int(value);
      if (!v) return Status(Errc::malformed, "bad integer field");
      return Field(type.value(), static_cast<std::int64_t>(*v));
    }
    case FieldType::x_u8:
    case FieldType::x_u16:
    case FieldType::x_u32:
    case FieldType::x_u64:
    case FieldType::x_reason:
    case FieldType::x_conseq: {
      auto v = parse_int(value);
      if (!v || *v < 0) return Status(Errc::malformed, "bad unsigned field");
      return Field(type.value(), static_cast<std::uint64_t>(*v));
    }
    case FieldType::x_f32:
    case FieldType::x_f64: {
      auto v = parse_double(value);
      if (!v) return Status(Errc::malformed, "bad float field");
      return Field(type.value(), *v);
    }
    case FieldType::x_char: {
      if (value.size() != 1) return Status(Errc::malformed, "bad char field");
      return Field::ch(value[0]);
    }
    case FieldType::x_string: {
      if (value.size() < 2 || value.front() != '"' || value.back() != '"') {
        return Status(Errc::malformed, "string field not quoted");
      }
      auto unescaped = unescape_ascii(value.substr(1, value.size() - 2));
      if (!unescaped) return Status(Errc::malformed, "bad string escape");
      return Field::str(*unescaped);
    }
  }
  return Status(Errc::malformed, "unhandled field type");
}

}  // namespace

std::string to_picl_line(const Record& record, const PiclOptions& options) {
  std::string out;
  out.reserve(64 + record.fields.size() * 16);
  char head[96];
  std::snprintf(head, sizeof head, "%d %u ", kEventRecordType, record.sensor);
  out += head;
  out += render_time(record.timestamp, options);
  std::snprintf(head, sizeof head, " %u %zu", record.node, record.fields.size());
  out += head;
  for (const Field& f : record.fields) {
    out += ' ';
    out += field_type_name(f.type());
    out += '=';
    out += f.to_string();
  }
  return out;
}

Result<Record> from_picl_line(std::string_view line, const PiclOptions& options) {
  // Tokenize on single spaces; quoted strings contain no raw spaces because
  // escape_ascii leaves spaces intact... so split carefully: fields are the
  // trailing tokens, and string values may embed spaces. Parse the fixed
  // head first, then walk fields respecting quotes.
  const std::string_view trimmed = trim(line);
  if (trimmed.empty()) return Status(Errc::malformed, "empty line");

  // Head: rectype event time node nfields
  std::size_t pos = 0;
  auto next_token = [&]() -> std::string_view {
    while (pos < trimmed.size() && trimmed[pos] == ' ') ++pos;
    const std::size_t start = pos;
    while (pos < trimmed.size() && trimmed[pos] != ' ') ++pos;
    return trimmed.substr(start, pos - start);
  };

  auto rectype = parse_int(next_token());
  if (!rectype) return Status(Errc::malformed, "bad record type");
  auto event = parse_int(next_token());
  if (!event || *event < 0) return Status(Errc::malformed, "bad event id");
  auto time = parse_time(next_token(), options);
  if (!time) return time.status();
  auto node = parse_int(next_token());
  if (!node || *node < 0) return Status(Errc::malformed, "bad node id");
  auto nfields = parse_int(next_token());
  if (!nfields || *nfields < 0 ||
      *nfields > static_cast<long long>(sensors::kMaxFieldsPerRecord)) {
    return Status(Errc::malformed, "bad field count");
  }

  Record record;
  record.sensor = static_cast<SensorId>(*event);
  record.timestamp = time.value();
  record.node = static_cast<NodeId>(*node);
  record.fields.reserve(static_cast<std::size_t>(*nfields));

  for (long long i = 0; i < *nfields; ++i) {
    while (pos < trimmed.size() && trimmed[pos] == ' ') ++pos;
    const std::size_t start = pos;
    // A token ends at a space that is not inside a quoted string value.
    bool in_quotes = false;
    bool escaped = false;
    while (pos < trimmed.size()) {
      const char c = trimmed[pos];
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_quotes = !in_quotes;
      } else if (c == ' ' && !in_quotes) {
        break;
      }
      ++pos;
    }
    auto field = parse_field(trimmed.substr(start, pos - start));
    if (!field) return field.status();
    record.fields.push_back(std::move(field).value());
  }
  while (pos < trimmed.size() && trimmed[pos] == ' ') ++pos;
  if (pos != trimmed.size()) return Status(Errc::malformed, "trailing tokens");
  return record;
}

}  // namespace brisk::picl
