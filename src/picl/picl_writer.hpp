// Buffered PICL trace file writer (the ISM's "file system" output in
// Fig. 1).
#pragma once

#include <cstdio>
#include <string>

#include "picl/picl_record.hpp"

namespace brisk::picl {

class PiclWriter {
 public:
  /// Opens `path` for writing (truncates).
  static Result<PiclWriter> open(const std::string& path, PiclOptions options);

  PiclWriter(PiclWriter&& other) noexcept;
  PiclWriter& operator=(PiclWriter&& other) noexcept;
  PiclWriter(const PiclWriter&) = delete;
  PiclWriter& operator=(const PiclWriter&) = delete;
  ~PiclWriter();

  Status write(const sensors::Record& record);
  Status flush();
  /// Flush + close; further writes fail.
  Status close();

  [[nodiscard]] std::uint64_t records_written() const noexcept { return records_written_; }

 private:
  PiclWriter(std::FILE* file, PiclOptions options) : file_(file), options_(options) {}

  std::FILE* file_ = nullptr;
  PiclOptions options_;
  std::uint64_t records_written_ = 0;
};

}  // namespace brisk::picl
