// PICL trace file reader: the consumer-side inverse of PiclWriter, used by
// analysis tools (consumers/trace_stats) and the round-trip tests.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "picl/picl_record.hpp"

namespace brisk::picl {

class PiclReader {
 public:
  static Result<PiclReader> open(const std::string& path, PiclOptions options);

  PiclReader(PiclReader&& other) noexcept;
  PiclReader& operator=(PiclReader&& other) noexcept;
  PiclReader(const PiclReader&) = delete;
  PiclReader& operator=(const PiclReader&) = delete;
  ~PiclReader();

  /// Reads the next record; nullopt at end of file. Blank lines and lines
  /// starting with '#' are skipped. An unterminated final line (a record
  /// the writer is still appending — PiclWriter always ends lines with
  /// '\n') is NOT an error: it reads as end-of-stream with partial_tail()
  /// set, and the file position rewinds to the line start so a later
  /// next() retries it once the writer finishes the line.
  Result<std::optional<sensors::Record>> next();

  /// Convenience: reads the whole remaining file.
  Result<std::vector<sensors::Record>> read_all();

  [[nodiscard]] std::uint64_t lines_read() const noexcept { return lines_read_; }
  /// True when the last end-of-stream was a truncated trailing record
  /// rather than a clean end of file.
  [[nodiscard]] bool partial_tail() const noexcept { return partial_tail_; }

 private:
  PiclReader(std::FILE* file, PiclOptions options) : file_(file), options_(options) {}

  std::FILE* file_ = nullptr;
  PiclOptions options_;
  std::uint64_t lines_read_ = 0;
  bool partial_tail_ = false;
};

}  // namespace brisk::picl
