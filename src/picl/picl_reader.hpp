// PICL trace file reader: the consumer-side inverse of PiclWriter, used by
// analysis tools (consumers/trace_stats) and the round-trip tests.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "picl/picl_record.hpp"

namespace brisk::picl {

class PiclReader {
 public:
  static Result<PiclReader> open(const std::string& path, PiclOptions options);

  PiclReader(PiclReader&& other) noexcept;
  PiclReader& operator=(PiclReader&& other) noexcept;
  PiclReader(const PiclReader&) = delete;
  PiclReader& operator=(const PiclReader&) = delete;
  ~PiclReader();

  /// Reads the next record; nullopt at end of file. Blank lines and lines
  /// starting with '#' are skipped.
  Result<std::optional<sensors::Record>> next();

  /// Convenience: reads the whole remaining file.
  Result<std::vector<sensors::Record>> read_all();

  [[nodiscard]] std::uint64_t lines_read() const noexcept { return lines_read_; }

 private:
  PiclReader(std::FILE* file, PiclOptions options) : file_(file), options_(options) {}

  std::FILE* file_ = nullptr;
  PiclOptions options_;
  std::uint64_t lines_read_ = 0;
};

}  // namespace brisk::picl
