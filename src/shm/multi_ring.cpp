#include "shm/multi_ring.hpp"

#include <new>

namespace brisk::shm {

Result<MultiRing> MultiRing::init(void* memory, std::uint32_t slot_count,
                                  std::uint32_t ring_capacity) {
  if (memory == nullptr) return Status(Errc::invalid_argument, "null memory");
  if (slot_count == 0) return Status(Errc::invalid_argument, "zero slots");
  if (ring_capacity < 64) return Status(Errc::invalid_argument, "ring capacity too small");
  auto* dir = new (memory) Directory{};
  dir->magic = kMagic;
  dir->slot_count = slot_count;
  dir->ring_capacity = ring_capacity;
  dir->slots_claimed.store(0, std::memory_order_relaxed);
  MultiRing mr(dir, static_cast<std::uint8_t*>(memory) + sizeof(Directory));
  for (std::uint32_t i = 0; i < slot_count; ++i) {
    auto ring = RingBuffer::init(mr.ring_memory(i), ring_capacity);
    if (!ring) return ring.status();
  }
  return mr;
}

Result<MultiRing> MultiRing::attach(void* memory, std::size_t memory_bytes) {
  if (memory == nullptr) return Status(Errc::invalid_argument, "null memory");
  if (memory_bytes < sizeof(Directory)) return Status(Errc::malformed, "region too small");
  auto* dir = static_cast<Directory*>(memory);
  if (dir->magic != kMagic) return Status(Errc::malformed, "bad directory magic");
  if (region_size(dir->slot_count, dir->ring_capacity) > memory_bytes) {
    return Status(Errc::malformed, "directory exceeds region");
  }
  return MultiRing(dir, static_cast<std::uint8_t*>(memory) + sizeof(Directory));
}

Result<RingBuffer> MultiRing::claim_slot() {
  const std::uint32_t index = dir_->slots_claimed.fetch_add(1, std::memory_order_acq_rel);
  if (index >= dir_->slot_count) {
    return Status(Errc::buffer_full, "all sensor slots claimed");
  }
  return RingBuffer::attach(ring_memory(index), RingBuffer::region_size(dir_->ring_capacity));
}

Result<RingBuffer> MultiRing::slot(std::uint32_t index) {
  if (index >= claimed_slots()) return Status(Errc::out_of_range, "slot not claimed");
  return RingBuffer::attach(ring_memory(index), RingBuffer::region_size(dir_->ring_capacity));
}

RingStats MultiRing::total_stats() {
  RingStats total;
  const std::uint32_t n = claimed_slots();
  for (std::uint32_t i = 0; i < n; ++i) {
    auto ring = slot(i);
    if (!ring) continue;
    RingStats s = ring.value().stats();
    total.pushed += s.pushed;
    total.popped += s.popped;
    total.dropped += s.dropped;
    total.bytes_pushed += s.bytes_pushed;
  }
  return total;
}

}  // namespace brisk::shm
