// MultiRing: a directory of SPSC rings in one shared region.
//
// The paper has "multiple user processes ... using internal sensors" per
// node, all drained by one external sensor. Instead of a multi-producer
// ring (which would put CAS contention on the sensor fast path), each
// producer claims a private slot — keeping every ring strictly SPSC — and
// the external sensor polls all active slots.
//
// Layout: [Directory | slot 0 ring | slot 1 ring | ...], each slot ring
// being RingBuffer::region_size(ring_capacity) bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "shm/ring_buffer.hpp"

namespace brisk::shm {

class MultiRing {
 public:
  struct Directory {
    std::uint64_t magic;
    std::uint32_t slot_count;
    std::uint32_t ring_capacity;                 // data bytes per slot ring
    std::atomic<std::uint32_t> slots_claimed;    // monotonically increasing
  };

  static constexpr std::uint64_t kMagic = 0x425249534b444952ULL;  // "BRISKDIR"

  static constexpr std::size_t region_size(std::uint32_t slot_count,
                                           std::uint32_t ring_capacity) noexcept {
    return sizeof(Directory) + std::size_t{slot_count} * RingBuffer::region_size(ring_capacity);
  }

  /// Formats `memory` as a directory of `slot_count` rings.
  static Result<MultiRing> init(void* memory, std::uint32_t slot_count,
                                std::uint32_t ring_capacity);
  /// Attaches to a formatted region (possibly from another process).
  static Result<MultiRing> attach(void* memory, std::size_t memory_bytes);

  MultiRing() = default;

  /// Producer side: claims the next free slot and returns its ring. Each
  /// producer (process or thread) must claim its own slot exactly once.
  Result<RingBuffer> claim_slot();

  /// Consumer side: ring of slot `index` (must be < claimed_slots()).
  Result<RingBuffer> slot(std::uint32_t index);

  [[nodiscard]] std::uint32_t slot_count() const noexcept { return dir_->slot_count; }
  [[nodiscard]] std::uint32_t claimed_slots() const noexcept {
    const std::uint32_t n = dir_->slots_claimed.load(std::memory_order_acquire);
    return n < dir_->slot_count ? n : dir_->slot_count;
  }
  [[nodiscard]] std::uint32_t ring_capacity() const noexcept { return dir_->ring_capacity; }

  /// Aggregate stats across all claimed slots.
  [[nodiscard]] RingStats total_stats();

  [[nodiscard]] bool valid() const noexcept { return dir_ != nullptr; }

 private:
  MultiRing(Directory* dir, std::uint8_t* rings) : dir_(dir), rings_(rings) {}

  [[nodiscard]] std::uint8_t* ring_memory(std::uint32_t index) noexcept {
    return rings_ + std::size_t{index} * RingBuffer::region_size(dir_->ring_capacity);
  }

  Directory* dir_ = nullptr;
  std::uint8_t* rings_ = nullptr;
};

}  // namespace brisk::shm
