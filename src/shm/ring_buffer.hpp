// Single-producer/single-consumer ring buffer for variable-size records,
// laid out over raw (optionally cross-process shared) memory.
//
// This is the paper's central low-intrusion device: internal sensors
// (NOTICE macros in the target application) push binary records here with
// two atomic loads, a memcpy and one release store — no locks and no
// syscalls — while the external sensor pops from another process.
//
// Layout:   [Header | data area]
// Records:  u32 length prefix + payload. A length of kWrapMark means "skip
//           to the start of the data area" (written when a record does not
//           fit contiguously before the end).
// Offsets are monotonically increasing u64 counters (head = producer,
// tail = consumer); the physical position is offset % capacity. Overflow
// policy is drop-new: a full ring rejects the record and bumps a drop
// counter (event dropping is an explicit box in the paper's Fig. 1).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/byte_buffer.hpp"
#include "common/error.hpp"

namespace brisk::shm {

struct RingStats {
  std::uint64_t pushed = 0;   // records successfully written
  std::uint64_t popped = 0;   // records successfully read
  std::uint64_t dropped = 0;  // records rejected because the ring was full
  std::uint64_t bytes_pushed = 0;
};

class RingBuffer {
 public:
  struct Header {
    std::uint64_t magic;
    std::uint64_t capacity;  // bytes in the data area
    alignas(64) std::atomic<std::uint64_t> head;   // producer cursor
    alignas(64) std::atomic<std::uint64_t> tail;   // consumer cursor
    alignas(64) std::atomic<std::uint64_t> pushed;
    std::atomic<std::uint64_t> popped;
    std::atomic<std::uint64_t> dropped;
    std::atomic<std::uint64_t> bytes_pushed;
  };

  static constexpr std::uint64_t kMagic = 0x425249534b524e47ULL;  // "BRISKRNG"
  static constexpr std::uint32_t kWrapMark = 0xffffffffu;
  static constexpr std::size_t kLengthBytes = sizeof(std::uint32_t);

  /// Bytes of raw memory needed for a ring with `data_capacity` data bytes.
  static constexpr std::size_t region_size(std::size_t data_capacity) noexcept {
    return sizeof(Header) + data_capacity;
  }

  /// Formats `memory` (>= region_size(data_capacity) bytes) as a fresh ring.
  static Result<RingBuffer> init(void* memory, std::size_t data_capacity);
  /// Attaches to memory already formatted by `init` (e.g. in another
  /// process). Validates the magic and capacity against `memory_bytes`.
  static Result<RingBuffer> attach(void* memory, std::size_t memory_bytes);

  RingBuffer() = default;

  /// Producer side. Returns false (and counts a drop) when the record does
  /// not fit. Records larger than capacity/2 are rejected outright.
  bool try_push(ByteSpan record) noexcept;

  /// Consumer side. Appends the record payload to `out` and returns true,
  /// or returns false when the ring is empty.
  bool try_pop(std::vector<std::uint8_t>& out);

  /// Consumer-side peek at the next record length (0 if empty).
  [[nodiscard]] std::size_t next_record_size() const noexcept;

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return header_->capacity; }
  /// Bytes currently queued (including length prefixes and wrap padding).
  [[nodiscard]] std::size_t bytes_used() const noexcept;
  [[nodiscard]] RingStats stats() const noexcept;

  [[nodiscard]] bool valid() const noexcept { return header_ != nullptr; }

 private:
  RingBuffer(Header* header, std::uint8_t* data) : header_(header), data_(data) {}

  void write_bytes(std::uint64_t offset, ByteSpan bytes) noexcept;
  void read_bytes(std::uint64_t offset, void* out, std::size_t len) const noexcept;
  [[nodiscard]] std::uint32_t read_length(std::uint64_t offset) const noexcept;

  Header* header_ = nullptr;
  std::uint8_t* data_ = nullptr;
};

}  // namespace brisk::shm
