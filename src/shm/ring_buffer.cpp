#include "shm/ring_buffer.hpp"

#include <cstring>
#include <new>

namespace brisk::shm {

Result<RingBuffer> RingBuffer::init(void* memory, std::size_t data_capacity) {
  if (memory == nullptr) return Status(Errc::invalid_argument, "null memory");
  if (data_capacity < 64) return Status(Errc::invalid_argument, "ring capacity too small");
  auto* header = new (memory) Header{};
  header->magic = kMagic;
  header->capacity = data_capacity;
  header->head.store(0, std::memory_order_relaxed);
  header->tail.store(0, std::memory_order_relaxed);
  header->pushed.store(0, std::memory_order_relaxed);
  header->popped.store(0, std::memory_order_relaxed);
  header->dropped.store(0, std::memory_order_relaxed);
  header->bytes_pushed.store(0, std::memory_order_relaxed);
  return RingBuffer(header, static_cast<std::uint8_t*>(memory) + sizeof(Header));
}

Result<RingBuffer> RingBuffer::attach(void* memory, std::size_t memory_bytes) {
  if (memory == nullptr) return Status(Errc::invalid_argument, "null memory");
  if (memory_bytes < sizeof(Header)) return Status(Errc::malformed, "region smaller than header");
  auto* header = static_cast<Header*>(memory);
  if (header->magic != kMagic) return Status(Errc::malformed, "bad ring magic");
  if (sizeof(Header) + header->capacity > memory_bytes) {
    return Status(Errc::malformed, "ring capacity exceeds region");
  }
  return RingBuffer(header, static_cast<std::uint8_t*>(memory) + sizeof(Header));
}

void RingBuffer::write_bytes(std::uint64_t offset, ByteSpan bytes) noexcept {
  std::memcpy(data_ + offset % header_->capacity, bytes.data(), bytes.size());
}

void RingBuffer::read_bytes(std::uint64_t offset, void* out, std::size_t len) const noexcept {
  std::memcpy(out, data_ + offset % header_->capacity, len);
}

std::uint32_t RingBuffer::read_length(std::uint64_t offset) const noexcept {
  std::uint32_t len = 0;
  read_bytes(offset, &len, sizeof len);
  return len;
}

bool RingBuffer::try_push(ByteSpan record) noexcept {
  const std::uint64_t capacity = header_->capacity;
  const std::size_t need = kLengthBytes + record.size();
  if (need > capacity / 2) {
    header_->dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  const std::uint64_t head = header_->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
  const std::uint64_t pos = head % capacity;
  const std::uint64_t to_end = capacity - pos;

  // Bytes the producer cursor must advance: a record never straddles the
  // physical end of the data area, so a short tail segment is padded out
  // (with a wrap mark when there is room for one).
  const std::uint64_t skip = (to_end < need) ? to_end : 0;
  const std::uint64_t total = skip + need;
  if (total > capacity - (head - tail)) {
    header_->dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  std::uint64_t write_at = head;
  if (skip != 0) {
    if (to_end >= kLengthBytes) {
      const std::uint32_t mark = kWrapMark;
      write_bytes(write_at, ByteSpan{reinterpret_cast<const std::uint8_t*>(&mark), sizeof mark});
    }
    write_at += skip;  // now at a physical offset of 0
  }
  const auto len = static_cast<std::uint32_t>(record.size());
  write_bytes(write_at, ByteSpan{reinterpret_cast<const std::uint8_t*>(&len), sizeof len});
  if (!record.empty()) write_bytes(write_at + kLengthBytes, record);

  header_->pushed.fetch_add(1, std::memory_order_relaxed);
  header_->bytes_pushed.fetch_add(record.size(), std::memory_order_relaxed);
  header_->head.store(head + total, std::memory_order_release);
  return true;
}

bool RingBuffer::try_pop(std::vector<std::uint8_t>& out) {
  const std::uint64_t capacity = header_->capacity;
  std::uint64_t tail = header_->tail.load(std::memory_order_relaxed);

  for (;;) {
    const std::uint64_t head = header_->head.load(std::memory_order_acquire);
    if (tail == head) {
      header_->tail.store(tail, std::memory_order_release);
      return false;
    }
    const std::uint64_t pos = tail % capacity;
    const std::uint64_t to_end = capacity - pos;
    if (to_end < kLengthBytes) {
      tail += to_end;  // producer skipped a segment too short for a mark
      continue;
    }
    const std::uint32_t len = read_length(tail);
    if (len == kWrapMark) {
      tail += to_end;
      continue;
    }
    const std::size_t old_size = out.size();
    out.resize(old_size + len);
    if (len != 0) read_bytes(tail + kLengthBytes, out.data() + old_size, len);
    header_->popped.fetch_add(1, std::memory_order_relaxed);
    header_->tail.store(tail + kLengthBytes + len, std::memory_order_release);
    return true;
  }
}

std::size_t RingBuffer::next_record_size() const noexcept {
  const std::uint64_t capacity = header_->capacity;
  std::uint64_t tail = header_->tail.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t head = header_->head.load(std::memory_order_acquire);
    if (tail == head) return 0;
    const std::uint64_t pos = tail % capacity;
    const std::uint64_t to_end = capacity - pos;
    if (to_end < kLengthBytes) {
      tail += to_end;
      continue;
    }
    const std::uint32_t len = read_length(tail);
    if (len == kWrapMark) {
      tail += to_end;
      continue;
    }
    return len;
  }
}

bool RingBuffer::empty() const noexcept {
  return header_->head.load(std::memory_order_acquire) ==
         header_->tail.load(std::memory_order_acquire);
}

std::size_t RingBuffer::bytes_used() const noexcept {
  return static_cast<std::size_t>(header_->head.load(std::memory_order_acquire) -
                                  header_->tail.load(std::memory_order_acquire));
}

RingStats RingBuffer::stats() const noexcept {
  RingStats s;
  s.pushed = header_->pushed.load(std::memory_order_relaxed);
  s.popped = header_->popped.load(std::memory_order_relaxed);
  s.dropped = header_->dropped.load(std::memory_order_relaxed);
  s.bytes_pushed = header_->bytes_pushed.load(std::memory_order_relaxed);
  return s;
}

}  // namespace brisk::shm
