// Shared memory mappings that back the internal-sensor → external-sensor
// path. The paper's internal sensors write records "to the memory [ring
// buffer]" which "is read by an external sensor, which runs as another
// process on the same node"; we provide that cross-process memory with
// POSIX mmap:
//   * anonymous shared mappings, inherited across fork() (our node
//     processes in tests/benches are forked children), and
//   * named shm_open segments for independently started executables
//     (brisk_exs and the instrumented application).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "common/error.hpp"

namespace brisk::shm {

class SharedRegion {
 public:
  ~SharedRegion();
  SharedRegion(const SharedRegion&) = delete;
  SharedRegion& operator=(const SharedRegion&) = delete;
  SharedRegion(SharedRegion&& other) noexcept;
  SharedRegion& operator=(SharedRegion&& other) noexcept;

  /// MAP_SHARED|MAP_ANONYMOUS region, shared with forked children.
  static Result<SharedRegion> create_anonymous(std::size_t bytes);

  /// Creates (O_CREAT|O_EXCL) a named POSIX shm object and maps it. The
  /// name must start with '/'. The creator owns unlinking (see `unlink`).
  static Result<SharedRegion> create_named(const std::string& name, std::size_t bytes);

  /// Maps an existing named object created by another process.
  static Result<SharedRegion> open_named(const std::string& name);

  /// Removes the name from the filesystem namespace (mapping stays valid).
  Status unlink();

  [[nodiscard]] void* data() noexcept { return base_; }
  [[nodiscard]] const void* data() const noexcept { return base_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  SharedRegion(void* base, std::size_t size, std::string name)
      : base_(base), size_(size), name_(std::move(name)) {}

  void* base_ = nullptr;
  std::size_t size_ = 0;
  std::string name_;  // empty for anonymous regions
};

}  // namespace brisk::shm
