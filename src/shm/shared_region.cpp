#include "shm/shared_region.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace brisk::shm {
namespace {

Status errno_status(const char* what) {
  return Status(Errc::io_error, std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

SharedRegion::~SharedRegion() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
  }
}

SharedRegion::SharedRegion(SharedRegion&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      name_(std::move(other.name_)) {}

SharedRegion& SharedRegion::operator=(SharedRegion&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, size_);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    name_ = std::move(other.name_);
  }
  return *this;
}

Result<SharedRegion> SharedRegion::create_anonymous(std::size_t bytes) {
  if (bytes == 0) return Status(Errc::invalid_argument, "zero-size region");
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) return errno_status("mmap(anonymous)");
  std::memset(base, 0, bytes);
  return SharedRegion(base, bytes, "");
}

Result<SharedRegion> SharedRegion::create_named(const std::string& name, std::size_t bytes) {
  if (bytes == 0) return Status(Errc::invalid_argument, "zero-size region");
  if (name.empty() || name[0] != '/') {
    return Status(Errc::invalid_argument, "shm name must start with '/'");
  }
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    return errno == EEXIST ? Status(Errc::already_exists, name) : errno_status("shm_open");
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    Status st = errno_status("ftruncate");
    ::close(fd);
    ::shm_unlink(name.c_str());
    return st;
  }
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    Status st = errno_status("mmap(named)");
    ::shm_unlink(name.c_str());
    return st;
  }
  std::memset(base, 0, bytes);
  return SharedRegion(base, bytes, name);
}

Result<SharedRegion> SharedRegion::open_named(const std::string& name) {
  if (name.empty() || name[0] != '/') {
    return Status(Errc::invalid_argument, "shm name must start with '/'");
  }
  int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    return errno == ENOENT ? Status(Errc::not_found, name) : errno_status("shm_open");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status s = errno_status("fstat");
    ::close(fd);
    return s;
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) return errno_status("mmap(named)");
  return SharedRegion(base, bytes, name);
}

Status SharedRegion::unlink() {
  if (name_.empty()) return Status(Errc::invalid_argument, "anonymous region has no name");
  if (::shm_unlink(name_.c_str()) != 0 && errno != ENOENT) return errno_status("shm_unlink");
  return Status::ok();
}

}  // namespace brisk::shm
