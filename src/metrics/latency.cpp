#include "metrics/latency.hpp"

namespace brisk::metrics {

using sensors::kTraceStageCount;
using sensors::TraceAnnotation;
using sensors::TraceStamp;

LatencyRecorder::LatencyRecorder(MetricsRegistry& registry) {
  for (std::size_t i = 0; i < kLatencyPairs.size(); ++i) {
    histograms_[i] = &registry.histogram(kLatencyPairs[i].name);
  }
  traces_observed_ = &registry.counter("lat.traces_observed");
  clamped_spans_ = &registry.counter("lat.clamped_spans");
}

void LatencyRecorder::observe(const TraceAnnotation& annotation) noexcept {
  // Last stamp per stage wins (stages stamp at most once in practice).
  std::array<TimeMicros, kTraceStageCount> at{};
  std::array<bool, kTraceStageCount> present{};
  for (const TraceStamp& s : annotation.stamps) {
    const auto i = static_cast<std::size_t>(s.stage);
    if (i >= kTraceStageCount) continue;
    at[i] = s.at;
    present[i] = true;
  }

  for (std::size_t i = 0; i < kLatencyPairs.size(); ++i) {
    const auto from = static_cast<std::size_t>(kLatencyPairs[i].from);
    const auto to = static_cast<std::size_t>(kLatencyPairs[i].to);
    if (!present[from] || !present[to]) continue;
    const TimeMicros delta = at[to] - at[from];
    if (delta < 1) clamped_spans_->increment();
    histograms_[i]->record(delta < 1 ? 1u : static_cast<std::uint64_t>(delta));
  }
  traces_observed_->increment();
}

}  // namespace brisk::metrics
