#include "metrics/metrics.hpp"

#include <bit>
#include <charconv>

namespace brisk::metrics {

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kLinearBuckets) return static_cast<std::size_t>(value);
  const auto octave = static_cast<std::size_t>(std::bit_width(value)) - 1;
  const auto sub = static_cast<std::size_t>((value >> (octave - 2)) & 3);
  const std::size_t index =
      kLinearBuckets + (octave - 4) * kSubBucketsPerOctave + sub;
  return index < kBucketCount ? index : kBucketCount - 1;
}

std::uint64_t Histogram::bucket_bound(std::size_t index) noexcept {
  if (index < kLinearBuckets) return index;
  if (index >= kBucketCount - 1) return UINT64_MAX;
  const std::size_t octave = 4 + (index - kLinearBuckets) / kSubBucketsPerOctave;
  const std::size_t sub = (index - kLinearBuckets) % kSubBucketsPerOctave;
  return (std::uint64_t{1} << octave) + (std::uint64_t{sub + 1} << (octave - 2)) - 1;
}

void Histogram::merge_from(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
}

std::uint64_t Histogram::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& bucket : buckets_) sum += bucket.load(std::memory_order_relaxed);
  return sum;
}

std::string histogram_bucket_name(std::string_view base, std::uint64_t bound) {
  std::string name(base);
  name += ".le_";
  if (bound == UINT64_MAX) {
    name += "inf";
  } else {
    name += std::to_string(bound);
  }
  return name;
}

bool parse_histogram_bucket_name(std::string_view name, std::string& base,
                                 std::uint64_t& bound) {
  const std::size_t at = name.rfind(".le_");
  if (at == std::string_view::npos || at == 0) return false;
  const std::string_view suffix = name.substr(at + 4);
  if (suffix.empty()) return false;
  if (suffix == "inf") {
    bound = UINT64_MAX;
  } else {
    std::uint64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(suffix.data(), suffix.data() + suffix.size(), parsed);
    if (ec != std::errc{} || ptr != suffix.data() + suffix.size()) return false;
    bound = parsed;
  }
  base = std::string(name.substr(0, at));
  return true;
}

std::uint64_t histogram_percentile(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& buckets, double q) noexcept {
  std::uint64_t total = 0;
  for (const auto& [bound, count] : buckets) total += count;
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (const auto& [bound, count] : buckets) {
    seen += count;
    if (seen >= rank) return bound;
  }
  return buckets.back().first;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& owned : counters_) {
    if (owned.name == name) return owned.cell;
  }
  // emplace then name: the atomic cell is neither copyable nor movable.
  counters_.emplace_back();
  counters_.back().name = std::string(name);
  order_.emplace_back(MetricKind::counter, counters_.size() - 1);
  return counters_.back().cell;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& owned : gauges_) {
    if (owned.name == name) return owned.cell;
  }
  gauges_.emplace_back();
  gauges_.back().name = std::string(name);
  order_.emplace_back(MetricKind::gauge, gauges_.size() - 1);
  return gauges_.back().cell;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& owned : histograms_) {
    if (owned.name == name) return owned.cell;
  }
  histograms_.emplace_back();
  histograms_.back().name = std::string(name);
  order_.emplace_back(MetricKind::histogram_bucket, histograms_.size() - 1);
  return histograms_.back().cell;
}

void MetricsRegistry::add_collector(Collector collector) {
  std::lock_guard<std::mutex> lk(mutex_);
  collectors_.push_back(std::move(collector));
}

std::vector<Sample> MetricsRegistry::snapshot() const {
  std::vector<Sample> out;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    out.reserve(order_.size());
    SnapshotBuilder owned_builder(out);
    for (const auto& [kind, index] : order_) {
      switch (kind) {
        case MetricKind::counter: {
          const OwnedCounter& owned = counters_[index];
          out.push_back(Sample{owned.name, owned.cell.value(), MetricKind::counter});
          break;
        }
        case MetricKind::gauge: {
          const OwnedGauge& owned = gauges_[index];
          out.push_back(Sample{owned.name, owned.cell.value(), MetricKind::gauge});
          break;
        }
        case MetricKind::histogram_bucket: {
          // Only non-empty buckets ship: a quiet histogram costs nothing on
          // the record path, and bucket samples are self-describing.
          const OwnedHistogram& owned = histograms_[index];
          for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
            const std::uint64_t n = owned.cell.bucket_count_at(b);
            if (n == 0) continue;
            owned_builder.histogram_bucket(owned.name, Histogram::bucket_bound(b), n);
          }
          break;
        }
      }
    }
    collectors = collectors_;
  }
  // Collectors run outside the mutex: they may read state that itself locks.
  SnapshotBuilder builder(out);
  for (const Collector& collector : collectors) collector(builder);
  return out;
}

std::size_t MetricsRegistry::owned_count() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return order_.size();
}

std::vector<sensors::Record> snapshot_to_records(const std::vector<Sample>& samples,
                                                 NodeId node, TimeMicros timestamp,
                                                 SequenceNo& sequence) {
  std::vector<sensors::Record> records;
  records.reserve(samples.size());
  for (const Sample& sample : samples) {
    records.push_back(sensors::make_metrics_record(node, sequence++, timestamp, sample.name,
                                                   sample.value, sample.kind));
  }
  return records;
}

}  // namespace brisk::metrics
