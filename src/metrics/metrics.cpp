#include "metrics/metrics.hpp"

namespace brisk::metrics {

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& owned : counters_) {
    if (owned.name == name) return owned.cell;
  }
  // emplace then name: the atomic cell is neither copyable nor movable.
  counters_.emplace_back();
  counters_.back().name = std::string(name);
  order_.emplace_back(false, counters_.size() - 1);
  return counters_.back().cell;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& owned : gauges_) {
    if (owned.name == name) return owned.cell;
  }
  gauges_.emplace_back();
  gauges_.back().name = std::string(name);
  order_.emplace_back(true, gauges_.size() - 1);
  return gauges_.back().cell;
}

void MetricsRegistry::add_collector(Collector collector) {
  std::lock_guard<std::mutex> lk(mutex_);
  collectors_.push_back(std::move(collector));
}

std::vector<Sample> MetricsRegistry::snapshot() const {
  std::vector<Sample> out;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    out.reserve(order_.size());
    for (const auto& [is_gauge, index] : order_) {
      if (is_gauge) {
        const OwnedGauge& owned = gauges_[index];
        out.push_back(Sample{owned.name, owned.cell.value(), MetricKind::gauge});
      } else {
        const OwnedCounter& owned = counters_[index];
        out.push_back(Sample{owned.name, owned.cell.value(), MetricKind::counter});
      }
    }
    collectors = collectors_;
  }
  // Collectors run outside the mutex: they may read state that itself locks.
  SnapshotBuilder builder(out);
  for (const Collector& collector : collectors) collector(builder);
  return out;
}

std::size_t MetricsRegistry::owned_count() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return order_.size();
}

std::vector<sensors::Record> snapshot_to_records(const std::vector<Sample>& samples,
                                                 NodeId node, TimeMicros timestamp,
                                                 SequenceNo& sequence) {
  std::vector<sensors::Record> records;
  records.reserve(samples.size());
  for (const Sample& sample : samples) {
    records.push_back(sensors::make_metrics_record(node, sequence++, timestamp, sample.name,
                                                   sample.value, sample.kind));
  }
  return records;
}

}  // namespace brisk::metrics
