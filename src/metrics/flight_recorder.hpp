// Diagnostic flight recorder: a lock-light fixed-size ring of structured
// events (see sensors/event_record.hpp for the taxonomy) recorded at the
// daemons' existing decision points — session reap/quarantine/rejoin,
// zero-window grants, lane and queue drops, subscriber eviction, reader
// migration, watermark stalls, reconnects.
//
// Writers claim a slot with one relaxed fetch_add and publish it with a
// release store of the slot's stamp; every slot field is a relaxed atomic,
// so any thread may record and any thread may read concurrently without a
// mutex on the hot path (a reader that races a writer simply skips the
// in-flight slot). The ring overwrites oldest-first: the recorder is a
// crash-dump aid and an event feed, not a lossless log — total_recorded()
// minus the ring size says how much history was overwritten.
//
// Three consumers:
//  * dump(FILE*) — the human-readable table, wired to SIGUSR1 and the
//    daemons' fatal-exit paths via the process-wide registry below;
//  * drain_new(cursor) — the 0xFF03 emission feed: returns events recorded
//    after the cursor and advances it, so periodic snapshots ship each
//    event exactly once through the normal record path;
//  * snapshot() — everything still in the ring, oldest first (tests).
#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sensors/event_record.hpp"

namespace brisk::metrics {

/// One recorded event. `at` is the recording clock's timestamp (the
/// emitting daemon's clock, so the 0xFF03 record timestamp is the event
/// time).
struct FlightEvent {
  sensors::EventKind kind = sensors::EventKind::session_reaped;
  std::uint64_t subject = 0;
  std::uint64_t value = 0;
  TimeMicros at = 0;
};

class FlightRecorder {
 public:
  /// `name` labels this recorder in dumps ("ism", "exs-7", "relay-1000").
  /// Construction registers the recorder in the process-wide dump registry;
  /// destruction unregisters it.
  explicit FlightRecorder(std::string name, std::size_t capacity = 256);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event. Lock-free: one fetch_add plus relaxed stores.
  void record(sensors::EventKind kind, std::uint64_t subject, std::uint64_t value,
              TimeMicros at) noexcept;

  /// Events recorded so far (monotone; exceeds the ring size once the ring
  /// wraps).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Everything still in the ring, oldest first. Slots being written while
  /// the reader passes are skipped.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Events recorded after `cursor`, oldest first; advances the cursor to
  /// the current head. Events overwritten before the reader got to them are
  /// silently skipped (the cursor jumps over them).
  [[nodiscard]] std::vector<FlightEvent> drain_new(std::uint64_t& cursor) const;

  /// Human-readable table of the ring's contents.
  void dump(std::FILE* out) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  struct Slot {
    /// 0 = never written; otherwise 1 + the event's global index while the
    /// payload below is valid. Writers store the claim (release) after the
    /// payload; readers verify the stamp before and after reading.
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint64_t> subject{0};
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::int64_t> at{0};
  };

  /// Reads slot `index`'s event if it is (still) the event at global index
  /// `expect`; false when a writer overwrote or is mid-write.
  bool read_slot(std::uint64_t expect, FlightEvent& out) const;

  std::string name_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Async-signal-safe request for a dump of every registered recorder: the
/// daemons' SIGUSR1 handlers call this, and the event loops poll
/// consume_flight_dump_request() between cycles.
void request_flight_dump() noexcept;
/// True exactly once per request_flight_dump() (consumes the flag).
[[nodiscard]] bool consume_flight_dump_request() noexcept;
/// Dumps every live recorder in registration order (SIGUSR1 and the
/// fatal-exit paths).
void dump_flight_recorders(std::FILE* out);

}  // namespace brisk::metrics
