// The metrics/observability layer: a small registry of named monotonic
// counters and gauges that unifies every counter the daemons keep, plus the
// snapshot machinery that turns the registry into reserved-sensor-id
// records (see sensors/metrics_record.hpp) flowing through the normal
// record path.
//
// Two ways to get a metric into a snapshot:
//  * owned handles — counter()/gauge() return stable references to atomic
//    cells that are cheap to bump on hot paths (relaxed ordering; any
//    thread may bump, any thread may snapshot);
//  * collectors — callbacks that append samples at snapshot time, bridging
//    the existing stats structs (IsmStats, PipelineStats, SorterStats,
//    CreStats, ExsStats, sink counters) without rewriting their hot paths.
// Snapshot order is registration order (owned metrics first, then each
// collector in turn), so a snapshot's record sequence is deterministic for
// a fixed configuration.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sensors/metrics_record.hpp"

namespace brisk::metrics {

using sensors::MetricKind;

/// One sampled metric in a snapshot.
struct Sample {
  std::string name;
  std::uint64_t value = 0;
  MetricKind kind = MetricKind::counter;
};

/// A monotonic counter cell. Bumps are relaxed atomic adds — safe from any
/// thread, never a synchronization point.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  void increment() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// An instantaneous level. set() overwrites; add() adjusts.
class Gauge {
 public:
  void set(std::uint64_t value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(static_cast<std::uint64_t>(delta), std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A fixed-bucket log-linear histogram of non-negative integer values
/// (microsecond latencies, byte sizes). record() is one relaxed atomic
/// add — safe from any thread, never a synchronization point — and
/// histograms merge bucket-wise, so per-thread instances can be combined.
///
/// Bucket layout: values 0..15 get exact linear buckets; above that each
/// power-of-two octave is split into 4 sub-buckets (relative error <= 25%),
/// up to ~16.7s of microseconds; the last bucket catches everything larger.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 96;
  static constexpr std::size_t kLinearBuckets = 16;
  static constexpr std::size_t kSubBucketsPerOctave = 4;

  /// The bucket a value lands in.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Inclusive upper bound of a bucket; UINT64_MAX for the overflow bucket.
  [[nodiscard]] static std::uint64_t bucket_bound(std::size_t index) noexcept;

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Bucket-wise merge (associative and commutative).
  void merge_from(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t bucket_count_at(std::size_t index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
};

/// Snapshot sample name for one histogram bucket: "<base>.le_<bound>", or
/// "<base>.le_inf" for the overflow bucket. The suffix makes bucket samples
/// self-describing, so consumers rebuild histograms without knowing the
/// producer's bucket layout.
[[nodiscard]] std::string histogram_bucket_name(std::string_view base, std::uint64_t bound);
/// Parses the scheme above; false if `name` is not a bucket sample name.
/// On success `base` is the histogram series and `bound` its inclusive
/// upper bound (UINT64_MAX for the overflow bucket).
bool parse_histogram_bucket_name(std::string_view name, std::string& base,
                                 std::uint64_t& bound);

/// Percentile estimate from sorted (inclusive upper bound, count) pairs, as
/// a consumer rebuilds them from bucket samples: the bound of the bucket
/// holding the q-th quantile (0 < q <= 1). Returns 0 on an empty histogram.
[[nodiscard]] std::uint64_t histogram_percentile(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& buckets, double q) noexcept;

/// Appends samples to the snapshot under construction; handed to
/// collectors so they never see the registry's internals.
class SnapshotBuilder {
 public:
  explicit SnapshotBuilder(std::vector<Sample>& out) : out_(out) {}

  void counter(std::string_view name, std::uint64_t value) {
    out_.push_back(Sample{std::string(name), value, MetricKind::counter});
  }
  void gauge(std::string_view name, std::uint64_t value) {
    out_.push_back(Sample{std::string(name), value, MetricKind::gauge});
  }
  /// One bucket of a histogram series (see histogram_bucket_name).
  void histogram_bucket(std::string_view base, std::uint64_t bound, std::uint64_t count) {
    out_.push_back(Sample{histogram_bucket_name(base, bound), count,
                          MetricKind::histogram_bucket});
  }

 private:
  std::vector<Sample>& out_;
};

class MetricsRegistry {
 public:
  using Collector = std::function<void(SnapshotBuilder&)>;

  /// Returns the counter/gauge/histogram registered under `name`, creating
  /// it on first use. References stay valid for the registry's lifetime.
  /// Registration takes a mutex; the returned handles do not.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Registers a snapshot-time callback. Collectors run on the snapshotting
  /// thread; anything they read must be safe to read from it.
  void add_collector(Collector collector);

  /// Samples every owned metric and runs every collector, in registration
  /// order.
  [[nodiscard]] std::vector<Sample> snapshot() const;

  [[nodiscard]] std::size_t owned_count() const;

 private:
  struct OwnedCounter {
    std::string name;
    Counter cell;
  };
  struct OwnedGauge {
    std::string name;
    Gauge cell;
  };
  struct OwnedHistogram {
    std::string name;
    Histogram cell;
  };

  mutable std::mutex mutex_;
  std::deque<OwnedCounter> counters_;  // deque: stable addresses
  std::deque<OwnedGauge> gauges_;
  std::deque<OwnedHistogram> histograms_;
  /// Registration order across all kinds, as (kind, index) pairs.
  std::vector<std::pair<MetricKind, std::size_t>> order_;
  std::vector<Collector> collectors_;
};

/// Renders a snapshot into reserved-sensor-id records ready for the normal
/// record path. `sequence` is the emitter's running counter, advanced by
/// one per record.
std::vector<sensors::Record> snapshot_to_records(const std::vector<Sample>& samples,
                                                 NodeId node, TimeMicros timestamp,
                                                 SequenceNo& sequence);

}  // namespace brisk::metrics
