// The metrics/observability layer: a small registry of named monotonic
// counters and gauges that unifies every counter the daemons keep, plus the
// snapshot machinery that turns the registry into reserved-sensor-id
// records (see sensors/metrics_record.hpp) flowing through the normal
// record path.
//
// Two ways to get a metric into a snapshot:
//  * owned handles — counter()/gauge() return stable references to atomic
//    cells that are cheap to bump on hot paths (relaxed ordering; any
//    thread may bump, any thread may snapshot);
//  * collectors — callbacks that append samples at snapshot time, bridging
//    the existing stats structs (IsmStats, PipelineStats, SorterStats,
//    CreStats, ExsStats, sink counters) without rewriting their hot paths.
// Snapshot order is registration order (owned metrics first, then each
// collector in turn), so a snapshot's record sequence is deterministic for
// a fixed configuration.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sensors/metrics_record.hpp"

namespace brisk::metrics {

using sensors::MetricKind;

/// One sampled metric in a snapshot.
struct Sample {
  std::string name;
  std::uint64_t value = 0;
  MetricKind kind = MetricKind::counter;
};

/// A monotonic counter cell. Bumps are relaxed atomic adds — safe from any
/// thread, never a synchronization point.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  void increment() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// An instantaneous level. set() overwrites; add() adjusts.
class Gauge {
 public:
  void set(std::uint64_t value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(static_cast<std::uint64_t>(delta), std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Appends samples to the snapshot under construction; handed to
/// collectors so they never see the registry's internals.
class SnapshotBuilder {
 public:
  explicit SnapshotBuilder(std::vector<Sample>& out) : out_(out) {}

  void counter(std::string_view name, std::uint64_t value) {
    out_.push_back(Sample{std::string(name), value, MetricKind::counter});
  }
  void gauge(std::string_view name, std::uint64_t value) {
    out_.push_back(Sample{std::string(name), value, MetricKind::gauge});
  }

 private:
  std::vector<Sample>& out_;
};

class MetricsRegistry {
 public:
  using Collector = std::function<void(SnapshotBuilder&)>;

  /// Returns the counter/gauge registered under `name`, creating it on
  /// first use. References stay valid for the registry's lifetime.
  /// Registration takes a mutex; the returned handles do not.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Registers a snapshot-time callback. Collectors run on the snapshotting
  /// thread; anything they read must be safe to read from it.
  void add_collector(Collector collector);

  /// Samples every owned metric and runs every collector, in registration
  /// order.
  [[nodiscard]] std::vector<Sample> snapshot() const;

  [[nodiscard]] std::size_t owned_count() const;

 private:
  struct OwnedCounter {
    std::string name;
    Counter cell;
  };
  struct OwnedGauge {
    std::string name;
    Gauge cell;
  };

  mutable std::mutex mutex_;
  std::deque<OwnedCounter> counters_;  // deque: stable addresses
  std::deque<OwnedGauge> gauges_;
  /// Registration order across both kinds, as (is_gauge, index) pairs.
  std::vector<std::pair<bool, std::size_t>> order_;
  std::vector<Collector> collectors_;
};

/// Renders a snapshot into reserved-sensor-id records ready for the normal
/// record path. `sequence` is the emitter's running counter, advanced by
/// one per record.
std::vector<sensors::Record> snapshot_to_records(const std::vector<Sample>& samples,
                                                 NodeId node, TimeMicros timestamp,
                                                 SequenceNo& sequence);

}  // namespace brisk::metrics
