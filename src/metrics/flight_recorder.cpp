#include "metrics/flight_recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <mutex>

namespace brisk::metrics {

namespace {

// Process-wide recorder registry for SIGUSR1 / fatal-exit dumps. The mutex
// guards registration only — record() never touches it.
std::mutex g_registry_mutex;
std::vector<FlightRecorder*>& registry() {
  static std::vector<FlightRecorder*> instances;
  return instances;
}

std::atomic<bool> g_dump_requested{false};

}  // namespace

FlightRecorder::FlightRecorder(std::string name, std::size_t capacity)
    : name_(std::move(name)), slots_(std::max<std::size_t>(capacity, 1)) {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  registry().push_back(this);
}

FlightRecorder::~FlightRecorder() {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  auto& instances = registry();
  instances.erase(std::remove(instances.begin(), instances.end(), this),
                  instances.end());
}

void FlightRecorder::record(sensors::EventKind kind, std::uint64_t subject,
                            std::uint64_t value, TimeMicros at) noexcept {
  const std::uint64_t index = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index % slots_.size()];
  // Invalidate the slot first so a concurrent reader can't stitch the old
  // stamp onto the new payload, then publish payload before the new stamp.
  slot.stamp.store(0, std::memory_order_release);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.subject.store(subject, std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  slot.at.store(at, std::memory_order_relaxed);
  slot.stamp.store(index + 1, std::memory_order_release);
}

bool FlightRecorder::read_slot(std::uint64_t expect, FlightEvent& out) const {
  const Slot& slot = slots_[expect % slots_.size()];
  if (slot.stamp.load(std::memory_order_acquire) != expect + 1) {
    return false;
  }
  FlightEvent event;
  event.kind = static_cast<sensors::EventKind>(
      slot.kind.load(std::memory_order_relaxed));
  event.subject = slot.subject.load(std::memory_order_relaxed);
  event.value = slot.value.load(std::memory_order_relaxed);
  event.at = slot.at.load(std::memory_order_relaxed);
  // Re-check: a writer lapping the ring mid-read would have cleared the
  // stamp before touching the payload.
  if (slot.stamp.load(std::memory_order_acquire) != expect + 1) {
    return false;
  }
  out = event;
  return true;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t window = std::min<std::uint64_t>(head, slots_.size());
  std::vector<FlightEvent> events;
  events.reserve(window);
  for (std::uint64_t index = head - window; index < head; ++index) {
    FlightEvent event;
    if (read_slot(index, event)) {
      events.push_back(event);
    }
  }
  return events;
}

std::vector<FlightEvent> FlightRecorder::drain_new(std::uint64_t& cursor) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t start = cursor;
  if (head - start > slots_.size()) {
    start = head - slots_.size();  // older events were overwritten
  }
  std::vector<FlightEvent> events;
  events.reserve(head - start);
  for (std::uint64_t index = start; index < head; ++index) {
    FlightEvent event;
    if (read_slot(index, event)) {
      events.push_back(event);
    }
  }
  cursor = head;
  return events;
}

void FlightRecorder::dump(std::FILE* out) const {
  const std::uint64_t total = total_recorded();
  const std::vector<FlightEvent> events = snapshot();
  std::fprintf(out, "flight[%s]: %" PRIu64 " events recorded, %zu retained\n",
               name_.c_str(), total, events.size());
  for (const FlightEvent& event : events) {
    std::fprintf(out,
                 "  %12lld  %-10s subject=%" PRIu64 " value=%" PRIu64 "\n",
                 static_cast<long long>(event.at),
                 sensors::event_kind_token(event.kind), event.subject,
                 event.value);
  }
}

void request_flight_dump() noexcept {
  g_dump_requested.store(true, std::memory_order_release);
}

bool consume_flight_dump_request() noexcept {
  return g_dump_requested.exchange(false, std::memory_order_acq_rel);
}

void dump_flight_recorders(std::FILE* out) {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (FlightRecorder* recorder : registry()) {
    recorder->dump(out);
  }
  std::fflush(out);
}

}  // namespace brisk::metrics
