// Stage-pair latency histograms fed from trace stamps.
//
// The ISM finalizes every traced record at sink delivery: the deltas
// between adjacent stage stamps (plus the whole ring-to-sink span) are
// recorded into one histogram per stage pair, registered in the metrics
// registry as "lat.<from>_to_<to>" — so percentiles ride the normal 0xFF01
// snapshot path to every sink and `brisk_consume --mode latency` can render
// them live.
//
// Deltas are clamped to a 1us floor (the clock granularity): a stage pair
// the pipeline crosses within the same microsecond still counts, it just
// reads as "<= 1us". Negative deltas — possible across nodes when the
// clock-sync correction lags the true skew — are clamped the same way and
// counted in lat.clamped_spans.
#pragma once

#include <array>
#include <cstddef>

#include "metrics/metrics.hpp"
#include "sensors/trace.hpp"

namespace brisk::metrics {

struct StagePair {
  sensors::TraceStage from;
  sensors::TraceStage to;
  const char* name;  // metric series base name
};

/// The measured spans, in pipeline order: every adjacent stage pair of the
/// taxonomy plus the end-to-end span.
inline constexpr std::array<StagePair, 9> kLatencyPairs = {{
    {sensors::TraceStage::ring_enqueue, sensors::TraceStage::exs_drain, "lat.ring_to_drain"},
    {sensors::TraceStage::exs_drain, sensors::TraceStage::batch_seal, "lat.drain_to_seal"},
    {sensors::TraceStage::batch_seal, sensors::TraceStage::tp_send, "lat.seal_to_send"},
    {sensors::TraceStage::tp_send, sensors::TraceStage::ism_ingest, "lat.send_to_ingest"},
    {sensors::TraceStage::ism_ingest, sensors::TraceStage::sorter_release, "lat.ingest_to_sort"},
    {sensors::TraceStage::sorter_release, sensors::TraceStage::merge_release, "lat.sort_to_merge"},
    {sensors::TraceStage::merge_release, sensors::TraceStage::cre_pass, "lat.merge_to_cre"},
    {sensors::TraceStage::cre_pass, sensors::TraceStage::sink_delivery, "lat.cre_to_sink"},
    {sensors::TraceStage::ring_enqueue, sensors::TraceStage::sink_delivery, "lat.end_to_end"},
}};

class LatencyRecorder {
 public:
  /// Registers one histogram per stage pair (plus bookkeeping counters) in
  /// `registry`; the registry must outlive the recorder.
  explicit LatencyRecorder(MetricsRegistry& registry);

  /// Feeds every stage pair for which both stamps are present. Lock-free;
  /// callable from whichever thread delivers to sinks.
  void observe(const sensors::TraceAnnotation& annotation) noexcept;

 private:
  std::array<Histogram*, kLatencyPairs.size()> histograms_{};
  Counter* traces_observed_ = nullptr;
  Counter* clamped_spans_ = nullptr;
};

}  // namespace brisk::metrics
