#include "lis/exs_config.hpp"

namespace brisk::lis {

Status ExsConfig::validate() const {
  if (batch_max_records == 0) return Status(Errc::invalid_argument, "batch_max_records == 0");
  if (batch_max_bytes < 64) return Status(Errc::invalid_argument, "batch_max_bytes < 64");
  if (batch_max_age_us < 0) return Status(Errc::invalid_argument, "negative batch_max_age_us");
  if (drain_burst == 0) return Status(Errc::invalid_argument, "drain_burst == 0");
  if (select_timeout_us <= 0) return Status(Errc::invalid_argument, "select_timeout_us <= 0");
  if (reconnect_backoff_base_us <= 0) {
    return Status(Errc::invalid_argument, "reconnect_backoff_base_us <= 0");
  }
  if (reconnect_backoff_cap_us < reconnect_backoff_base_us) {
    return Status(Errc::invalid_argument, "reconnect backoff cap below base");
  }
  if (reconnect_jitter < 0.0 || reconnect_jitter > 1.0) {
    return Status(Errc::invalid_argument, "reconnect_jitter outside [0, 1]");
  }
  if (heartbeat_period_us < 0) return Status(Errc::invalid_argument, "negative heartbeat period");
  if (ism_silence_timeout_us < 0) {
    return Status(Errc::invalid_argument, "negative ism_silence_timeout_us");
  }
  return Status::ok();
}

}  // namespace brisk::lis
