#include "lis/exs_config.hpp"

namespace brisk::lis {

Status ExsConfig::validate() const {
  if (batch_max_records == 0) return Status(Errc::invalid_argument, "batch_max_records == 0");
  if (batch_max_bytes < 64) return Status(Errc::invalid_argument, "batch_max_bytes < 64");
  if (batch_max_age_us < 0) return Status(Errc::invalid_argument, "negative batch_max_age_us");
  if (drain_burst == 0) return Status(Errc::invalid_argument, "drain_burst == 0");
  if (select_timeout_us <= 0) return Status(Errc::invalid_argument, "select_timeout_us <= 0");
  return Status::ok();
}

}  // namespace brisk::lis
