// Tuning knobs of the external sensor. The paper: "we added tuning knobs to
// many of BRISK's subsystems, so that users can trade-off among the various
// simple and complex IS performance metrics in a specific working
// environment" — these are the LIS-side knobs (batching vs latency, ring
// polling, the select timeout that sets the latency floor).
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"
#include "net/frame.hpp"
#include "net/poller.hpp"

namespace brisk::lis {

struct ExsConfig {
  NodeId node = 0;

  // --- batching / latency control -----------------------------------------
  /// Flush the current batch at this many records...
  std::uint32_t batch_max_records = 256;
  /// ...or at this many payload bytes...
  std::uint32_t batch_max_bytes = 32 * 1024;
  /// ...or when its oldest record is this old. 0 = flush every cycle
  /// (lowest latency, lowest throughput).
  TimeMicros batch_max_age_us = 20'000;

  // --- ring draining --------------------------------------------------------
  /// Records drained from the rings per loop cycle (bounds EXS CPU bursts;
  /// the EXS "may be assigned a lower priority").
  std::uint32_t drain_burst = 1024;

  // --- event loop ------------------------------------------------------------
  /// select() timeout; the paper observed this bounds worst-case record
  /// latency ("up to 40 ms").
  TimeMicros select_timeout_us = 40'000;
  /// Readiness-poll backend of the daemon loop.
  net::PollerBackend poller = net::PollerBackend::select;
  /// Cap on outbound frames deferred by a full kernel send buffer. The
  /// daemon subscribes to Readiness::writable only while this outbox holds
  /// bytes; at the cap, sends fall back to a bounded blocking flush.
  std::size_t outbox_bytes = net::kDefaultSendBufferBytes;
  /// How long a send may block flushing a wedged outbox before the link
  /// counts as lost (reconnect + replay take over).
  TimeMicros send_stall_timeout_us = 2'000'000;

  // --- session resilience ----------------------------------------------------
  /// Identifies this EXS process lifetime to the ISM. 0 = derive a unique
  /// value at connect time (daemons); tests may pin it for determinism.
  std::uint64_t incarnation = 0;
  /// Sent-but-unacknowledged data batches retained for replay after a
  /// reconnect. 0 disables replay (and the HELLO_ACK send gate with it).
  std::uint32_t replay_buffer_batches = 256;
  /// Byte cap on the replay buffer — the memory an operator actually
  /// provisions. 0 = no byte cap (count cap alone applies).
  std::size_t replay_buffer_bytes = 0;
  /// First reconnect delay after a lost connection...
  TimeMicros reconnect_backoff_base_us = 50'000;
  /// ...doubling per failed attempt up to this cap...
  TimeMicros reconnect_backoff_cap_us = 5'000'000;
  /// ...plus uniform jitter of up to this fraction of the delay (decorrelates
  /// a thundering herd of EXSes after an ISM restart).
  double reconnect_jitter = 0.2;
  /// Give up after this many consecutive failed reconnects (0 = never).
  std::uint32_t max_reconnect_attempts = 0;
  /// Idle-link heartbeat period (0 disables heartbeats).
  TimeMicros heartbeat_period_us = 1'000'000;
  /// Reconnect if the ISM has been silent this long — catches half-open
  /// TCP sessions where writes still succeed locally (0 disables).
  TimeMicros ism_silence_timeout_us = 0;

  // --- credit-based flow control ---------------------------------------------
  /// Honor ISM credit grants (--exs-pace): batches beyond the granted
  /// window wait in the replay buffer instead of blasting into a blocked
  /// socket, and the batch size shrinks to fit the window. Off, or facing
  /// an ISM that grants no credits, the EXS sends as fast as the socket
  /// accepts (the pre-v3 behavior). Pacing requires the replay buffer.
  bool pace = true;

  // --- self-instrumentation ---------------------------------------------------
  /// Snapshot the EXS's own counters into reserved-sensor-id metrics
  /// records at this period and ship them in-band like any sensor record
  /// (0 disables).
  TimeMicros metrics_interval_us = 0;

  /// Validates knob consistency.
  [[nodiscard]] Status validate() const;
};

/// Counters the EXS exports for perturbation analysis and the evaluation
/// harness.
struct ExsStats {
  std::uint64_t records_forwarded = 0;
  std::uint64_t batches_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t ring_drops_seen = 0;      // cumulative drops reported by rings
  std::uint64_t transcode_errors = 0;
  std::uint64_t sync_polls_answered = 0;
  std::uint64_t sync_adjustments = 0;
  TimeMicros correction_us = 0;           // current clock correction value
  // --- session resilience ----------------------------------------------------
  std::uint64_t reconnects = 0;           // sessions re-established after a loss
  std::uint64_t batches_replayed = 0;     // frames re-sent from the replay buffer
  std::uint64_t replay_evictions = 0;     // batches declared lost (buffer full)
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t acks_received = 0;        // HELLO_ACK + BATCH_ACK frames
  std::uint64_t replay_pending = 0;       // batches currently awaiting ack
  // --- credit-based flow control ---------------------------------------------
  std::uint64_t credit_grants_received = 0;  // acks carrying a grant
  std::uint64_t paced_batches = 0;        // batches deferred by a closed window
  TimeMicros credit_stalled_us = 0;       // total time sends sat window-blocked
  std::uint64_t credit_window_records = 0;   // last granted record window
  std::uint64_t credit_window_bytes = 0;     // last granted byte window (0 = uncapped)
};

}  // namespace brisk::lis
