// Tuning knobs of the external sensor. The paper: "we added tuning knobs to
// many of BRISK's subsystems, so that users can trade-off among the various
// simple and complex IS performance metrics in a specific working
// environment" — these are the LIS-side knobs (batching vs latency, ring
// polling, the select timeout that sets the latency floor).
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"

namespace brisk::lis {

struct ExsConfig {
  NodeId node = 0;

  // --- batching / latency control -----------------------------------------
  /// Flush the current batch at this many records...
  std::uint32_t batch_max_records = 256;
  /// ...or at this many payload bytes...
  std::uint32_t batch_max_bytes = 32 * 1024;
  /// ...or when its oldest record is this old. 0 = flush every cycle
  /// (lowest latency, lowest throughput).
  TimeMicros batch_max_age_us = 20'000;

  // --- ring draining --------------------------------------------------------
  /// Records drained from the rings per loop cycle (bounds EXS CPU bursts;
  /// the EXS "may be assigned a lower priority").
  std::uint32_t drain_burst = 1024;

  // --- event loop ------------------------------------------------------------
  /// select() timeout; the paper observed this bounds worst-case record
  /// latency ("up to 40 ms").
  TimeMicros select_timeout_us = 40'000;

  /// Validates knob consistency.
  [[nodiscard]] Status validate() const;
};

/// Counters the EXS exports for perturbation analysis and the evaluation
/// harness.
struct ExsStats {
  std::uint64_t records_forwarded = 0;
  std::uint64_t batches_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t ring_drops_seen = 0;      // cumulative drops reported by rings
  std::uint64_t transcode_errors = 0;
  std::uint64_t sync_polls_answered = 0;
  std::uint64_t sync_adjustments = 0;
  TimeMicros correction_us = 0;           // current clock correction value
};

}  // namespace brisk::lis
