// The external sensor (EXS): the daemon half of the LIS.
//
// "The memory is read by an external sensor, which runs as another process
// on the same node and may be assigned a lower priority. Both the internal
// sensors and the external sensor form an LIS that sends instrumentation
// data to the ISM."
//
// Split in two layers:
//  * ExsCore — the node-side protocol logic, deterministic and socket-free:
//    drains rings, applies the clock correction, batches, answers sync
//    polls, and folds ADJUST deltas into the correction value. The session
//    machinery (HELLO/HELLO_ACK/BATCH_ACK, go-back-N replay, credit
//    pacing) lives in the shared tp::UpstreamLink — the same link a relay
//    ISM uses toward its parent. Tests drive the core directly.
//  * ExternalSensor — binds ExsCore to a real TCP connection and the
//    select() loop, and owns connection survival: when the link to the ISM
//    dies it reconnects on a tp::ReconnectSchedule (exponential backoff +
//    jitter) while the core keeps draining rings into the bounded replay
//    buffer. This is what the brisk_exs executable runs.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "clock/clock.hpp"
#include "lis/batcher.hpp"
#include "metrics/flight_recorder.hpp"
#include "metrics/metrics.hpp"
#include "lis/exs_config.hpp"
#include "net/faulty_socket.hpp"
#include "net/frame.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "shm/multi_ring.hpp"
#include "tp/upstream_link.hpp"
#include "tp/wire.hpp"

namespace brisk::lis {

/// Sends a frame payload to the ISM.
using FrameSink = std::function<Status(ByteBuffer payload)>;

class ExsCore {
 public:
  /// `rings` is the node's sensor ring directory; `clock` is the node
  /// clock; `sink` carries frames to the ISM.
  ExsCore(const ExsConfig& config, shm::MultiRing rings, clk::Clock& clock, FrameSink sink);

  /// Drains up to config.drain_burst records across all claimed rings into
  /// the batcher. Returns the number of records drained.
  Result<std::size_t> drain_rings();

  /// Age-based flush; call once per loop cycle.
  Status maybe_flush() { return batcher_.maybe_flush(); }
  Status flush() { return batcher_.flush(); }

  /// Handles one frame from the ISM (TIME_REQ, ADJUST, HELLO_ACK,
  /// BATCH_ACK, HEARTBEAT, BYE). Returns Errc::closed for BYE.
  Status handle_frame(ByteSpan payload);

  /// Opens (or re-opens) the session; see tp::UpstreamLink::send_hello.
  Status send_hello() { return link_.send_hello(); }

  /// Sends a liveness heartbeat (empty body).
  Status send_heartbeat() { return link_.send_heartbeat(); }

  /// Snapshots the metrics registry into reserved-sensor-id records and
  /// feeds them through the batcher — metrics ship in-band, exactly like
  /// sensor records (batched, replayed, deduped).
  Status emit_metrics();

  /// Transport notifications from the daemon layer; see tp::UpstreamLink.
  void on_disconnect() noexcept { link_.on_disconnect(); }
  Status on_reconnected() { return link_.on_reconnected(); }

  /// The clock correction the sync protocol has accumulated; added to every
  /// record timestamp on its way out ("the raw local time ... is added to a
  /// correction value maintained by the EXS, before sending the record to
  /// the ISM").
  [[nodiscard]] TimeMicros correction() const noexcept { return correction_; }
  /// The node clock as the sync protocol sees it (raw + correction).
  [[nodiscard]] TimeMicros corrected_now() noexcept { return clock_.now() + correction_; }

  /// True once the ISM sent BYE (clean shutdown, not a link failure).
  [[nodiscard]] bool saw_bye() const noexcept { return link_.saw_bye(); }
  /// True while batches are gated on a pending HELLO_ACK.
  [[nodiscard]] bool awaiting_ack() const noexcept { return link_.awaiting_ack(); }
  [[nodiscard]] const tp::ReplayBuffer& replay() const noexcept { return link_.replay(); }

  /// True once an ISM credit grant governs this session's sends (pacing on,
  /// replay enabled, and a grant for this incarnation has arrived).
  [[nodiscard]] bool pacing() const noexcept { return link_.pacing(); }
  /// Sent-but-unacknowledged records/bytes charged against the window.
  [[nodiscard]] std::uint64_t outstanding_records() const noexcept {
    return link_.outstanding_records();
  }
  [[nodiscard]] std::uint64_t outstanding_bytes() const noexcept {
    return link_.outstanding_bytes();
  }

  [[nodiscard]] ExsStats stats() const noexcept;
  [[nodiscard]] metrics::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// The node's flight recorder; events drain into the 0xFF03 stream with
  /// each metrics snapshot (batched and replayed like any record).
  [[nodiscard]] metrics::FlightRecorder& flight() noexcept { return flight_; }
  [[nodiscard]] const ExsConfig& config() const noexcept { return config_; }
  [[nodiscard]] shm::MultiRing& rings() noexcept { return rings_; }
  [[nodiscard]] tp::UpstreamLink& link() noexcept { return link_; }

 private:
  static tp::LinkConfig make_link_config(const ExsConfig& config);

  ExsConfig config_;
  shm::MultiRing rings_;
  clk::Clock& clock_;
  FrameSink sink_;
  Batcher batcher_;
  tp::UpstreamLink link_;
  TimeMicros correction_ = 0;
  std::uint64_t records_forwarded_ = 0;
  std::uint64_t transcode_errors_ = 0;
  std::uint64_t sync_polls_answered_ = 0;
  std::uint64_t sync_adjustments_ = 0;
  metrics::MetricsRegistry metrics_;
  SequenceNo metrics_sequence_ = 0;
  metrics::FlightRecorder flight_;
  std::uint64_t flight_cursor_ = 0;
  std::vector<std::uint8_t> drain_scratch_;
};

class ExternalSensor {
 public:
  /// Connects to the ISM and wires the core to the socket. The initial
  /// connection must succeed; later losses are survived by the backoff
  /// reconnect loop.
  static Result<std::unique_ptr<ExternalSensor>> connect(const ExsConfig& config,
                                                         shm::MultiRing rings,
                                                         clk::Clock& clock,
                                                         const std::string& ism_host,
                                                         std::uint16_t ism_port);

  /// Runs the select() loop until `stop()`, an ISM BYE, or (when
  /// max_reconnect_attempts > 0) the reconnect budget is exhausted. Each
  /// cycle: handle inbound frames, drain rings, flush aged batches, send
  /// heartbeats, and drive the reconnect schedule while the link is down.
  Status run();
  /// Runs for at most `duration` (monotonic); for tests and benches.
  Status run_for(TimeMicros duration);
  void stop() noexcept { loop_->stop(); }

  /// Installs a frame-level fault policy on the outbound path (tests and
  /// the --fault-* flags of brisk_exs). Must be set before run().
  void set_fault_policy(net::FaultPolicy policy) { fault_.set_policy(std::move(policy)); }
  [[nodiscard]] const net::FaultStats& fault_stats() const noexcept { return fault_.stats(); }

  [[nodiscard]] bool connected() const noexcept { return connected_; }
  [[nodiscard]] std::uint64_t reconnects() const noexcept { return reconnects_; }
  [[nodiscard]] ExsCore& core() noexcept { return *core_; }

 private:
  ExternalSensor(const ExsConfig& config, net::TcpSocket socket);

  Status cycle();
  Status pump_socket();
  Status watch_socket();
  Status write_out(ByteSpan frame);
  /// Reconciles the socket's poller subscription with the outbox: writable
  /// interest only while deferred bytes remain (want-writable toggling).
  void update_write_interest();
  void handle_disconnect();
  void maybe_reconnect();

  ExsConfig config_;
  net::TcpSocket socket_;
  net::FaultySocket fault_;
  net::FrameReader frame_reader_;
  /// Outbound frames deferred by a full kernel send buffer; drained on
  /// writable readiness so a slow ISM never blocks the daemon mid-frame.
  net::FrameSendBuffer outbox_;
  bool want_writable_ = false;
  std::unique_ptr<net::Poller> loop_;
  std::unique_ptr<ExsCore> core_;
  std::string ism_host_;
  std::uint16_t ism_port_ = 0;
  bool connected_ = false;
  bool peer_closed_ = false;  // BYE received: clean shutdown, no reconnect
  tp::ReconnectSchedule reconnect_;
  TimeMicros last_rx_us_ = 0;       // monotonic, any inbound bytes
  TimeMicros last_tx_us_ = 0;       // monotonic, any outbound frame
  TimeMicros last_metrics_us_ = 0;  // monotonic, last metrics snapshot
  std::uint64_t reconnects_ = 0;
};

}  // namespace brisk::lis
