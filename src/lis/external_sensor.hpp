// The external sensor (EXS): the daemon half of the LIS.
//
// "The memory is read by an external sensor, which runs as another process
// on the same node and may be assigned a lower priority. Both the internal
// sensors and the external sensor form an LIS that sends instrumentation
// data to the ISM."
//
// Split in two layers:
//  * ExsCore — all protocol logic, deterministic and socket-free: drains
//    rings, applies the clock correction, batches, answers sync polls,
//    folds ADJUST deltas into the correction value, retains unacknowledged
//    batches for replay, and handles the session-resilience handshake
//    (HELLO/HELLO_ACK/BATCH_ACK). Tests drive it directly.
//  * ExternalSensor — binds ExsCore to a real TCP connection and the
//    select() loop, and owns connection survival: when the link to the ISM
//    dies it reconnects with exponential backoff + jitter while the core
//    keeps draining rings into the bounded replay buffer. This is what the
//    brisk_exs executable runs.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <random>

#include "clock/clock.hpp"
#include "lis/batcher.hpp"
#include "metrics/metrics.hpp"
#include "lis/exs_config.hpp"
#include "lis/replay_buffer.hpp"
#include "net/faulty_socket.hpp"
#include "net/frame.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "shm/multi_ring.hpp"
#include "tp/wire.hpp"

namespace brisk::lis {

/// Sends a frame payload to the ISM.
using FrameSink = std::function<Status(ByteBuffer payload)>;

class ExsCore {
 public:
  /// `rings` is the node's sensor ring directory; `clock` is the node
  /// clock; `sink` carries frames to the ISM.
  ExsCore(const ExsConfig& config, shm::MultiRing rings, clk::Clock& clock, FrameSink sink);

  /// Drains up to config.drain_burst records across all claimed rings into
  /// the batcher. Returns the number of records drained.
  Result<std::size_t> drain_rings();

  /// Age-based flush; call once per loop cycle.
  Status maybe_flush() { return batcher_.maybe_flush(); }
  Status flush() { return batcher_.flush(); }

  /// Handles one frame from the ISM (TIME_REQ, ADJUST, HELLO_ACK,
  /// BATCH_ACK, HEARTBEAT, BYE). Returns Errc::closed for BYE.
  Status handle_frame(ByteSpan payload);

  /// Sends the HELLO that opens (or re-opens) the session. With replay
  /// enabled, outbound batches are deferred into the replay buffer until
  /// the ISM's HELLO_ACK names the resume cursor — this keeps the batch
  /// sequence the ISM observes contiguous across a reconnect.
  Status send_hello();

  /// Sends a liveness heartbeat (empty body).
  Status send_heartbeat();

  /// Snapshots the metrics registry into reserved-sensor-id records and
  /// feeds them through the batcher — metrics ship in-band, exactly like
  /// sensor records (batched, replayed, deduped).
  Status emit_metrics();

  /// Transport notifications from the daemon layer: while the link is
  /// down, data batches accumulate in the replay buffer instead of being
  /// handed to the sink; re-establishing it replays everything unacked.
  void on_disconnect() noexcept;
  Status on_reconnected();

  /// The clock correction the sync protocol has accumulated; added to every
  /// record timestamp on its way out ("the raw local time ... is added to a
  /// correction value maintained by the EXS, before sending the record to
  /// the ISM").
  [[nodiscard]] TimeMicros correction() const noexcept { return correction_; }
  /// The node clock as the sync protocol sees it (raw + correction).
  [[nodiscard]] TimeMicros corrected_now() noexcept { return clock_.now() + correction_; }

  /// True once the ISM sent BYE (clean shutdown, not a link failure).
  [[nodiscard]] bool saw_bye() const noexcept { return saw_bye_; }
  /// True while batches are gated on a pending HELLO_ACK.
  [[nodiscard]] bool awaiting_ack() const noexcept { return awaiting_ack_; }
  [[nodiscard]] const ReplayBuffer& replay() const noexcept { return replay_; }

  /// True once an ISM credit grant governs this session's sends (pacing on,
  /// replay enabled, and a grant for this incarnation has arrived).
  [[nodiscard]] bool pacing() const noexcept { return credit_active_; }
  /// Sent-but-unacknowledged records/bytes charged against the window.
  [[nodiscard]] std::uint64_t outstanding_records() const noexcept;
  [[nodiscard]] std::uint64_t outstanding_bytes() const noexcept;

  [[nodiscard]] ExsStats stats() const noexcept;
  [[nodiscard]] metrics::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const ExsConfig& config() const noexcept { return config_; }
  [[nodiscard]] shm::MultiRing& rings() noexcept { return rings_; }

 private:
  Status ship_batch(ByteBuffer payload);
  /// Re-sends every retained batch, oldest first (the ISM dedupes).
  Status resend_unacked();
  /// Folds an ack's credit grant (if any) into the pacer window. Grants for
  /// a foreign incarnation are ignored — never a session error.
  void apply_credit(const std::optional<tp::CreditGrant>& credit);
  /// The paced send path: ships retained batches in sequence order from
  /// `next_unsent_seq_` while the granted window has room. A batch larger
  /// than the whole window is sent once nothing is outstanding (progress
  /// guarantee — a zero or shrunken window can never deadlock the stream).
  Status pump_sends();
  /// Marks everything unacked as unsent (go-back-N under pacing).
  void rewind_unsent() noexcept;
  void begin_stall() noexcept;
  void end_stall() noexcept;

  ExsConfig config_;
  shm::MultiRing rings_;
  clk::Clock& clock_;
  FrameSink sink_;
  Batcher batcher_;
  ReplayBuffer replay_;
  TimeMicros correction_ = 0;
  bool link_ready_ = true;
  bool awaiting_ack_ = false;
  bool saw_bye_ = false;
  bool have_last_ack_ = false;
  std::uint32_t last_batch_ack_expected_ = 0;
  std::uint64_t records_forwarded_ = 0;
  std::uint64_t transcode_errors_ = 0;
  std::uint64_t sync_polls_answered_ = 0;
  std::uint64_t sync_adjustments_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t batches_replayed_ = 0;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t acks_received_ = 0;
  // --- credit-based flow control ---------------------------------------------
  /// True once a grant for this incarnation arrived and pacing applies.
  bool credit_active_ = false;
  std::uint32_t window_records_ = 0;  // last granted record window
  std::uint64_t window_bytes_ = 0;    // last granted byte window (0 = uncapped)
  /// Replay entries with batch_seq below this have been handed to the sink
  /// and are charged against the window; at or above are still queued.
  std::uint32_t next_unsent_seq_ = 0;
  /// Highest batch_seq ever handed to the sink (+1); re-sends below it
  /// count as replays.
  std::uint32_t send_high_water_ = 0;
  std::uint64_t credit_grants_received_ = 0;
  std::uint64_t paced_batches_ = 0;
  TimeMicros credit_stalled_us_ = 0;
  TimeMicros stall_started_at_ = 0;  // node-clock time, 0 = not stalled
  metrics::MetricsRegistry metrics_;
  SequenceNo metrics_sequence_ = 0;
  std::vector<std::uint8_t> drain_scratch_;
};

class ExternalSensor {
 public:
  /// Connects to the ISM and wires the core to the socket. The initial
  /// connection must succeed; later losses are survived by the backoff
  /// reconnect loop.
  static Result<std::unique_ptr<ExternalSensor>> connect(const ExsConfig& config,
                                                         shm::MultiRing rings,
                                                         clk::Clock& clock,
                                                         const std::string& ism_host,
                                                         std::uint16_t ism_port);

  /// Runs the select() loop until `stop()`, an ISM BYE, or (when
  /// max_reconnect_attempts > 0) the reconnect budget is exhausted. Each
  /// cycle: handle inbound frames, drain rings, flush aged batches, send
  /// heartbeats, and drive the reconnect schedule while the link is down.
  Status run();
  /// Runs for at most `duration` (monotonic); for tests and benches.
  Status run_for(TimeMicros duration);
  void stop() noexcept { loop_->stop(); }

  /// Installs a frame-level fault policy on the outbound path (tests and
  /// the --fault-* flags of brisk_exs). Must be set before run().
  void set_fault_policy(net::FaultPolicy policy) { fault_.set_policy(std::move(policy)); }
  [[nodiscard]] const net::FaultStats& fault_stats() const noexcept { return fault_.stats(); }

  [[nodiscard]] bool connected() const noexcept { return connected_; }
  [[nodiscard]] std::uint64_t reconnects() const noexcept { return reconnects_; }
  [[nodiscard]] ExsCore& core() noexcept { return *core_; }

 private:
  ExternalSensor(const ExsConfig& config, net::TcpSocket socket);

  Status cycle();
  Status pump_socket();
  Status watch_socket();
  Status write_out(ByteSpan frame);
  void handle_disconnect();
  void maybe_reconnect();
  TimeMicros backoff_delay();

  ExsConfig config_;
  net::TcpSocket socket_;
  net::FaultySocket fault_;
  net::FrameReader frame_reader_;
  std::unique_ptr<net::Poller> loop_;
  std::unique_ptr<ExsCore> core_;
  std::string ism_host_;
  std::uint16_t ism_port_ = 0;
  bool connected_ = false;
  bool peer_closed_ = false;  // BYE received: clean shutdown, no reconnect
  std::uint32_t failed_attempts_ = 0;
  TimeMicros next_attempt_at_ = 0;  // monotonic
  TimeMicros last_rx_us_ = 0;       // monotonic, any inbound bytes
  TimeMicros last_tx_us_ = 0;       // monotonic, any outbound frame
  TimeMicros last_metrics_us_ = 0;  // monotonic, last metrics snapshot
  std::uint64_t reconnects_ = 0;
  std::mt19937_64 jitter_rng_;
};

}  // namespace brisk::lis
