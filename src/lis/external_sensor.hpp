// The external sensor (EXS): the daemon half of the LIS.
//
// "The memory is read by an external sensor, which runs as another process
// on the same node and may be assigned a lower priority. Both the internal
// sensors and the external sensor form an LIS that sends instrumentation
// data to the ISM."
//
// Split in two layers:
//  * ExsCore — all protocol logic, deterministic and socket-free: drains
//    rings, applies the clock correction, batches, answers sync polls,
//    folds ADJUST deltas into the correction value. Tests drive it directly.
//  * ExternalSensor — binds ExsCore to a real TCP connection and the
//    select() loop; this is what the brisk_exs executable runs.
#pragma once

#include <functional>
#include <memory>

#include "clock/clock.hpp"
#include "lis/batcher.hpp"
#include "lis/exs_config.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "shm/multi_ring.hpp"

namespace brisk::lis {

/// Sends a frame payload to the ISM.
using FrameSink = std::function<Status(ByteBuffer payload)>;

class ExsCore {
 public:
  /// `rings` is the node's sensor ring directory; `clock` is the node
  /// clock; `sink` carries frames to the ISM.
  ExsCore(const ExsConfig& config, shm::MultiRing rings, clk::Clock& clock, FrameSink sink);

  /// Drains up to config.drain_burst records across all claimed rings into
  /// the batcher. Returns the number of records drained.
  Result<std::size_t> drain_rings();

  /// Age-based flush; call once per loop cycle.
  Status maybe_flush() { return batcher_.maybe_flush(); }
  Status flush() { return batcher_.flush(); }

  /// Handles one frame from the ISM (TIME_REQ, ADJUST, BYE).
  /// Returns Errc::closed for BYE.
  Status handle_frame(ByteSpan payload);

  /// Sends the HELLO that opens the session.
  Status send_hello();

  /// The clock correction the sync protocol has accumulated; added to every
  /// record timestamp on its way out ("the raw local time ... is added to a
  /// correction value maintained by the EXS, before sending the record to
  /// the ISM").
  [[nodiscard]] TimeMicros correction() const noexcept { return correction_; }
  /// The node clock as the sync protocol sees it (raw + correction).
  [[nodiscard]] TimeMicros corrected_now() noexcept { return clock_.now() + correction_; }

  [[nodiscard]] ExsStats stats() const noexcept;
  [[nodiscard]] const ExsConfig& config() const noexcept { return config_; }
  [[nodiscard]] shm::MultiRing& rings() noexcept { return rings_; }

 private:
  ExsConfig config_;
  shm::MultiRing rings_;
  clk::Clock& clock_;
  FrameSink sink_;
  Batcher batcher_;
  TimeMicros correction_ = 0;
  std::uint64_t records_forwarded_ = 0;
  std::uint64_t transcode_errors_ = 0;
  std::uint64_t sync_polls_answered_ = 0;
  std::uint64_t sync_adjustments_ = 0;
  std::vector<std::uint8_t> drain_scratch_;
};

class ExternalSensor {
 public:
  /// Connects to the ISM and wires the core to the socket.
  static Result<std::unique_ptr<ExternalSensor>> connect(const ExsConfig& config,
                                                         shm::MultiRing rings,
                                                         clk::Clock& clock,
                                                         const std::string& ism_host,
                                                         std::uint16_t ism_port);

  /// Runs the select() loop until `stop()` or the ISM closes. Each cycle:
  /// handle inbound frames, drain rings, flush aged batches.
  Status run();
  /// Runs for at most `duration` (monotonic); for tests and benches.
  Status run_for(TimeMicros duration);
  void stop() noexcept { loop_.stop(); }

  [[nodiscard]] ExsCore& core() noexcept { return *core_; }

 private:
  ExternalSensor(const ExsConfig& config, net::TcpSocket socket);

  Status cycle();
  Status pump_socket();

  ExsConfig config_;
  net::TcpSocket socket_;
  net::FrameReader frame_reader_;
  net::EventLoop loop_;
  std::unique_ptr<ExsCore> core_;
  bool peer_closed_ = false;
};

}  // namespace brisk::lis
