// Batching with latency control (the "batching, latency control" box of the
// EXS in Fig. 1). Wraps a tp::BatchBuilder with the flush policy: a batch
// goes out when it reaches the record/byte limits or when its oldest record
// exceeds the age limit.
#pragma once

#include <functional>

#include "clock/clock.hpp"
#include "lis/exs_config.hpp"
#include "tp/batch.hpp"

namespace brisk::lis {

/// Receives finished batch frame payloads (the socket writer in production,
/// a capture vector in tests).
using BatchSink = std::function<Status(ByteBuffer batch_payload)>;

class Batcher {
 public:
  Batcher(const ExsConfig& config, clk::Clock& clock, BatchSink sink);

  /// Adds one native record (with the current clock correction applied).
  /// Flushes first if the record would overflow the byte limit, and after
  /// if the record limit is reached.
  Status add_native_record(ByteSpan native, TimeMicros ts_delta);

  /// Flushes if the age/size policy says so. Call once per loop cycle.
  Status maybe_flush();

  /// Unconditional flush of a non-empty batch.
  Status flush();

  void set_ring_dropped_total(std::uint64_t total) noexcept { ring_dropped_total_ = total; }

  /// Window-aware flush: caps the per-batch record count below the
  /// configured maximum so a batch never exceeds the granted flow-control
  /// window (a batch bigger than the whole window could otherwise never be
  /// sent). 0 restores the configured maximum.
  void set_record_cap(std::uint32_t cap) noexcept { record_cap_ = cap; }

  [[nodiscard]] std::uint32_t pending_records() const noexcept { return builder_.record_count(); }
  [[nodiscard]] std::uint64_t batches_sent() const noexcept { return batches_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

 private:
  [[nodiscard]] std::uint32_t effective_max_records() const noexcept {
    return record_cap_ > 0 && record_cap_ < config_.batch_max_records
               ? record_cap_
               : config_.batch_max_records;
  }

  ExsConfig config_;
  clk::Clock& clock_;
  BatchSink sink_;
  tp::BatchBuilder builder_;
  std::uint32_t record_cap_ = 0;  // 0 = config_.batch_max_records
  TimeMicros oldest_record_at_ = 0;  // clock time the current batch started
  /// Correction of the most recent record added; flush() uses it to stamp
  /// the batch_seal / tp_send trace slots in the synchronized timebase.
  TimeMicros last_ts_delta_ = 0;
  std::uint64_t ring_dropped_total_ = 0;
  std::uint64_t batches_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace brisk::lis
