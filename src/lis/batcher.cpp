#include "lis/batcher.hpp"

namespace brisk::lis {

Batcher::Batcher(const ExsConfig& config, clk::Clock& clock, BatchSink sink)
    : config_(config), clock_(clock), sink_(std::move(sink)), builder_(config.node) {}

Status Batcher::add_native_record(ByteSpan native, TimeMicros ts_delta) {
  // A record that would blow the byte limit ships the current batch first.
  if (!builder_.empty() &&
      builder_.payload_bytes() + native.size() > config_.batch_max_bytes) {
    Status st = flush();
    if (!st) return st;
  }
  if (builder_.empty()) oldest_record_at_ = clock_.now();
  last_ts_delta_ = ts_delta;
  Status st = builder_.add_native_record(native, ts_delta);
  if (!st) return st;
  if (builder_.record_count() >= effective_max_records()) return flush();
  return Status::ok();
}

Status Batcher::maybe_flush() {
  if (builder_.empty()) return Status::ok();
  if (clock_.now() - oldest_record_at_ >= config_.batch_max_age_us) return flush();
  return Status::ok();
}

Status Batcher::flush() {
  if (builder_.empty()) return Status::ok();
  builder_.set_ring_dropped_total(ring_dropped_total_);
  // Both stamps read the clock separately: seal marks the batch closing,
  // send marks the hand-off to the transport immediately after. A batch
  // replayed later keeps its first-send stamp (best effort).
  const TimeMicros seal_at = clock_.now() + last_ts_delta_;
  const TimeMicros send_at = clock_.now() + last_ts_delta_;
  builder_.patch_trace_stamps(seal_at, send_at);
  ByteBuffer payload = builder_.finish();
  const std::size_t bytes = payload.size();
  Status st = sink_(std::move(payload));
  if (!st) return st;
  ++batches_sent_;
  bytes_sent_ += bytes;
  return Status::ok();
}

}  // namespace brisk::lis
