#include "lis/external_sensor.hpp"

#include <unistd.h>

#include <algorithm>

#include "common/logging.hpp"
#include "common/time_util.hpp"
#include "sensors/record_codec.hpp"
#include "tp/wire.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::lis {

tp::LinkConfig ExsCore::make_link_config(const ExsConfig& config) {
  tp::LinkConfig link;
  link.node = config.node;
  link.incarnation = config.incarnation;
  link.replay_batches = config.replay_buffer_batches;
  link.replay_bytes = config.replay_buffer_bytes;
  link.pace = config.pace;
  return link;
}

ExsCore::ExsCore(const ExsConfig& config, shm::MultiRing rings, clk::Clock& clock,
                 FrameSink sink)
    : config_(config),
      rings_(rings),
      clock_(clock),
      sink_(sink),
      batcher_(config, clock,
               [this](ByteBuffer payload) { return link_.ship_batch(std::move(payload)); }),
      link_(make_link_config(config), clock, std::move(sink)),
      flight_("exs-" + std::to_string(config.node)) {
  drain_scratch_.reserve(sensors::kMaxNativeRecordBytes);
  // Window-aware flush: never build a batch the granted window cannot take
  // whole (0 keeps the configured maximum — the link's progress guarantee
  // covers the rare oversized leftover).
  link_.set_window_observer(
      [this](std::uint32_t window_records, std::uint64_t) {
        batcher_.set_record_cap(window_records);
      });
  // Bridge the existing stats counters into the registry; the collector
  // runs on whatever thread snapshots (the EXS loop thread in daemons).
  metrics_.add_collector([this](metrics::SnapshotBuilder& out) {
    const ExsStats s = stats();
    out.counter("exs.records_forwarded", s.records_forwarded);
    out.counter("exs.batches_sent", s.batches_sent);
    out.counter("exs.bytes_sent", s.bytes_sent);
    out.counter("exs.ring_drops_seen", s.ring_drops_seen);
    out.counter("exs.transcode_errors", s.transcode_errors);
    out.counter("exs.sync_polls_answered", s.sync_polls_answered);
    out.counter("exs.sync_adjustments", s.sync_adjustments);
    out.counter("exs.reconnects", s.reconnects);
    out.counter("exs.batches_replayed", s.batches_replayed);
    out.counter("exs.replay_evictions", s.replay_evictions);
    out.counter("exs.heartbeats_sent", s.heartbeats_sent);
    out.counter("exs.acks_received", s.acks_received);
    out.gauge("exs.replay_pending", s.replay_pending);
    out.gauge("exs.correction_us", static_cast<std::uint64_t>(s.correction_us));
    out.counter("exs.credit_grants", s.credit_grants_received);
    out.counter("exs.paced_batches", s.paced_batches);
    out.counter("exs.credit_stalled_ms",
                static_cast<std::uint64_t>(s.credit_stalled_us) / 1000);
    out.gauge("exs.credit_window_records", s.credit_window_records);
    out.gauge("exs.credit_window_bytes", s.credit_window_bytes);
  });
}

Result<std::size_t> ExsCore::drain_rings() {
  std::size_t drained = 0;
  const std::uint32_t slots = rings_.claimed_slots();
  // Round-robin across slots so one chatty producer cannot starve others.
  bool progress = true;
  while (progress && drained < config_.drain_burst) {
    progress = false;
    for (std::uint32_t i = 0; i < slots && drained < config_.drain_burst; ++i) {
      auto ring = rings_.slot(i);
      if (!ring) continue;
      drain_scratch_.clear();
      if (!ring.value().try_pop(drain_scratch_)) continue;
      progress = true;
      ++drained;
      if (sensors::native_trace_present({drain_scratch_.data(), drain_scratch_.size()})) {
        // Node-clock stamp; the transcode below shifts every trace stamp by
        // the correction along with the record timestamp.
        (void)sensors::stamp_native_trace(drain_scratch_, sensors::TraceStage::exs_drain,
                                          clock_.now());
      }
      batcher_.set_ring_dropped_total(rings_.total_stats().dropped);
      Status st = batcher_.add_native_record(
          ByteSpan{drain_scratch_.data(), drain_scratch_.size()}, correction_);
      if (!st) {
        ++transcode_errors_;
        BRISK_LOG_WARN << "EXS transcode failed: " << st.to_string();
      } else {
        ++records_forwarded_;
      }
    }
  }
  return drained;
}

Status ExsCore::handle_frame(ByteSpan payload) {
  xdr::Decoder decoder(payload);
  auto type = tp::peek_type(decoder);
  if (!type) return type.status();
  switch (type.value()) {
    case tp::MsgType::time_req: {
      auto req = tp::decode_time_req(decoder);
      if (!req) return req.status();
      ByteBuffer out;
      xdr::Encoder enc(out);
      tp::put_type(tp::MsgType::time_resp, enc);
      tp::encode_time_resp({req.value().request_id, corrected_now()}, enc);
      ++sync_polls_answered_;
      return sink_(std::move(out));
    }
    case tp::MsgType::adjust: {
      auto adj = tp::decode_adjust(decoder);
      if (!adj) return adj.status();
      correction_ += adj.value().delta;
      ++sync_adjustments_;
      return Status::ok();
    }
    default:
      if (tp::UpstreamLink::owns_frame(type.value())) {
        return link_.handle_frame(type.value(), decoder);
      }
      return Status(Errc::malformed, "unexpected message type at EXS");
  }
}

Status ExsCore::emit_metrics() {
  const auto samples = metrics_.snapshot();
  auto records = metrics::snapshot_to_records(samples, config_.node, clock_.now(),
                                              metrics_sequence_);
  for (const auto& record : records) {
    auto native = sensors::encode_native(record);
    if (!native) {
      ++transcode_errors_;
      continue;
    }
    // Through the batcher like any drained ring record: same correction,
    // same batching, same replay coverage across reconnects.
    Status st = batcher_.add_native_record(native.value().view(), correction_);
    if (!st) return st;
    ++records_forwarded_;
  }
  // Flight events ride out with the snapshot, stamped with the snapshot
  // time (the at_us field keeps the true event time).
  for (const metrics::FlightEvent& event : flight_.drain_new(flight_cursor_)) {
    auto record = sensors::make_event_record(config_.node, metrics_sequence_++, clock_.now(),
                                             event.kind, event.subject, event.value, event.at);
    auto native = sensors::encode_native(record);
    if (!native) {
      ++transcode_errors_;
      continue;
    }
    Status st = batcher_.add_native_record(native.value().view(), correction_);
    if (!st) return st;
    ++records_forwarded_;
  }
  return Status::ok();
}

ExsStats ExsCore::stats() const noexcept {
  const tp::LinkStats link = link_.stats();
  ExsStats s;
  s.records_forwarded = records_forwarded_;
  s.batches_sent = batcher_.batches_sent();
  s.bytes_sent = batcher_.bytes_sent();
  s.ring_drops_seen = const_cast<shm::MultiRing&>(rings_).total_stats().dropped;
  s.transcode_errors = transcode_errors_;
  s.sync_polls_answered = sync_polls_answered_;
  s.sync_adjustments = sync_adjustments_;
  s.correction_us = correction_;
  s.reconnects = link.reconnects;
  s.batches_replayed = link.batches_replayed;
  s.replay_evictions = link.replay_evictions;
  s.heartbeats_sent = link.heartbeats_sent;
  s.acks_received = link.acks_received;
  s.replay_pending = link.replay_pending;
  s.credit_grants_received = link.credit_grants_received;
  s.paced_batches = link.paced_batches;
  s.credit_stalled_us = link.credit_stalled_us;
  s.credit_window_records = link.credit_window_records;
  s.credit_window_bytes = link.credit_window_bytes;
  return s;
}

// ---- ExternalSensor ---------------------------------------------------------

namespace {

tp::ReconnectConfig make_reconnect_config(const ExsConfig& config) {
  tp::ReconnectConfig reconnect;
  reconnect.backoff_base_us = config.reconnect_backoff_base_us;
  reconnect.backoff_cap_us = config.reconnect_backoff_cap_us;
  reconnect.jitter = config.reconnect_jitter;
  reconnect.max_attempts = config.max_reconnect_attempts;
  return reconnect;
}

}  // namespace

ExternalSensor::ExternalSensor(const ExsConfig& config, net::TcpSocket socket)
    : config_(config),
      socket_(std::move(socket)),
      outbox_(config.outbox_bytes),
      loop_(net::make_poller(config.poller)),
      reconnect_(make_reconnect_config(config), config.node ^ config.incarnation) {}

Result<std::unique_ptr<ExternalSensor>> ExternalSensor::connect(
    const ExsConfig& config, shm::MultiRing rings, clk::Clock& clock,
    const std::string& ism_host, std::uint16_t ism_port) {
  Status valid = config.validate();
  if (!valid) return valid;
  ExsConfig effective = config;
  if (effective.incarnation == 0) {
    // One process lifetime = one incarnation; lets the ISM tell a reconnect
    // of the same EXS (resume the batch_seq cursor) from a restarted one
    // (start over at zero).
    effective.incarnation =
        (static_cast<std::uint64_t>(::getpid()) << 32) ^
        static_cast<std::uint64_t>(monotonic_micros());
    if (effective.incarnation == 0) effective.incarnation = 1;
  }
  auto socket = net::TcpSocket::connect(ism_host, ism_port);
  if (!socket) return socket.status();
  Status st = socket.value().set_nodelay(true);
  if (!st) return st;

  auto exs = std::unique_ptr<ExternalSensor>(
      new ExternalSensor(effective, std::move(socket).value()));
  ExternalSensor* raw = exs.get();
  exs->ism_host_ = ism_host;
  exs->ism_port_ = ism_port;
  exs->connected_ = true;
  exs->last_rx_us_ = monotonic_micros();
  exs->core_ = std::make_unique<ExsCore>(
      effective, rings, clock, [raw](ByteBuffer payload) {
        if (!raw->connected_) return Status::ok();  // link down: replay covers it
        Status wr = raw->write_out(payload.view());
        if (!wr) raw->handle_disconnect();
        // Transport loss is survived by the reconnect loop; the caller
        // (drain/flush) must not treat it as a fatal error.
        return Status::ok();
      });
  st = exs->core_->send_hello();
  if (!st) return st;
  if (!exs->connected_) return Status(Errc::closed, "ISM connection lost during hello");

  st = exs->socket_.set_nonblocking(true);
  if (!st) return st;
  st = exs->watch_socket();
  if (!st) return st;
  exs->loop_->set_idle([raw] {
    Status cy = raw->cycle();
    if (!cy) {
      BRISK_LOG_ERROR << "EXS cycle failed: " << cy.to_string();
      raw->loop_->stop();
    }
  });
  return exs;
}

Status ExternalSensor::watch_socket() {
  net::Readiness interest = net::Readiness::readable;
  if (want_writable_) interest = interest | net::Readiness::writable;
  return loop_->watch(socket_.fd(), interest, [this](int, net::Readiness ready) {
    if (any(ready & net::Readiness::writable)) {
      // The kernel buffer drained: flush deferred frames, then drop the
      // writable subscription once the outbox is empty again.
      Status flushed = outbox_.pump(socket_);
      if (!flushed) {
        BRISK_LOG_WARN << "EXS node " << config_.node
                       << ": outbox flush failed: " << flushed.to_string();
        handle_disconnect();
        return;
      }
      if (outbox_.empty()) last_tx_us_ = monotonic_micros();
      update_write_interest();
    }
    if (!any(ready & net::Readiness::readable)) return;
    Status pump = pump_socket();
    if (!pump && pump.code() != Errc::would_block) {
      if (core_->saw_bye()) {
        peer_closed_ = true;
        loop_->stop();
      } else {
        BRISK_LOG_WARN << "EXS node " << config_.node
                       << ": ISM link error: " << pump.to_string();
        handle_disconnect();
      }
    }
  });
}

Status ExternalSensor::write_out(ByteSpan frame) {
  Status st = fault_.write_frame(socket_, outbox_, frame);
  if (st.code() == Errc::buffer_full) {
    // The outbox itself is at its cap: the ISM has stopped reading well
    // past one kernel buffer of data. Block here — bounded — so ring
    // backpressure (and, with credits off, the stage-6 stall semantics)
    // is preserved; past the deadline the link counts as lost.
    const TimeMicros deadline = monotonic_micros() + config_.send_stall_timeout_us;
    core_->flight().record(sensors::EventKind::watermark_stall, config_.node,
                           outbox_.pending_bytes(), core_->corrected_now());
    for (;;) {
      Status pumped = outbox_.pump(socket_);
      if (!pumped) {
        update_write_interest();
        return pumped;
      }
      // The fault decision for this frame already ran above; the retry
      // enqueues the surviving payload directly.
      st = outbox_.enqueue_frame(frame);
      if (st.code() != Errc::buffer_full) break;
      if (monotonic_micros() >= deadline) {
        update_write_interest();
        return Status(Errc::timeout, "EXS outbox wedged past send stall timeout");
      }
      sleep_micros(1'000);
    }
    if (st) st = outbox_.pump(socket_);
  }
  if (st) last_tx_us_ = monotonic_micros();
  update_write_interest();
  return st;
}

void ExternalSensor::update_write_interest() {
  const bool want = !outbox_.empty();
  if (want == want_writable_ || !connected_ || !socket_.valid()) return;
  want_writable_ = want;
  Status st = watch_socket();  // upsert with the new interest mask
  if (!st && want) want_writable_ = false;  // cycle()'s flush is the fallback
}

Status ExternalSensor::pump_socket() {
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    auto n = socket_.read_some(MutableByteSpan{chunk, sizeof chunk});
    if (!n) {
      if (n.status().code() == Errc::would_block) return Status::ok();
      return n.status();
    }
    if (n.value() == 0) return Status(Errc::closed, "ISM closed connection");
    last_rx_us_ = monotonic_micros();
    frame_reader_.feed(ByteSpan{chunk, n.value()});
    for (;;) {
      auto frame = frame_reader_.next();
      if (!frame) return frame.status();
      if (!frame.value().has_value()) break;
      Status st = core_->handle_frame(frame.value()->view());
      if (!st) return st;
    }
  }
}

void ExternalSensor::handle_disconnect() {
  if (!connected_) return;
  connected_ = false;
  if (socket_.valid()) {
    (void)loop_->unwatch(socket_.fd());
    socket_.close();
  }
  frame_reader_ = net::FrameReader{};
  // Deferred frames die with the connection; replay re-ships what matters.
  outbox_ = net::FrameSendBuffer(config_.outbox_bytes);
  want_writable_ = false;
  core_->on_disconnect();
  reconnect_.arm(monotonic_micros());  // first retry on the next cycle
  BRISK_LOG_WARN << "EXS node " << config_.node
                 << ": lost ISM connection, entering reconnect";
}

void ExternalSensor::maybe_reconnect() {
  if (!reconnect_.due(monotonic_micros())) return;
  auto socket = net::TcpSocket::connect(ism_host_, ism_port_);
  if (socket) {
    net::TcpSocket fresh = std::move(socket).value();
    Status st = fresh.set_nodelay(true);
    if (st) st = fresh.set_nonblocking(true);
    if (st) {
      socket_ = std::move(fresh);
      st = watch_socket();
      if (st) {
        connected_ = true;
        reconnect_.record_success();
        last_rx_us_ = monotonic_micros();
        ++reconnects_;
        core_->flight().record(sensors::EventKind::reconnect, config_.node, reconnects_,
                               core_->corrected_now());
        BRISK_LOG_INFO << "EXS node " << config_.node << ": reconnected to ISM";
        // Re-hello; the HELLO_ACK cursor triggers replay of unacked batches.
        (void)core_->on_reconnected();
        return;
      }
      (void)loop_->unwatch(socket_.fd());
      socket_.close();
    }
  }
  if (!reconnect_.record_failure(monotonic_micros())) {
    BRISK_LOG_ERROR << "EXS node " << config_.node << ": giving up after "
                    << reconnect_.failed_attempts() << " reconnect attempts";
    loop_->stop();
  }
}

Status ExternalSensor::cycle() {
  if (metrics::consume_flight_dump_request()) metrics::dump_flight_recorders(stderr);
  if (!connected_ && !loop_->stopped()) maybe_reconnect();
  // Rings keep draining while the link is down: records flow into batches
  // and batches into the bounded replay buffer, whose evictions (if any)
  // are the declared loss.
  auto drained = core_->drain_rings();
  if (!drained) return drained.status();
  Status st = core_->maybe_flush();
  if (!st) return st;
  const TimeMicros now = monotonic_micros();
  if (connected_ && config_.heartbeat_period_us > 0 &&
      now - last_tx_us_ >= config_.heartbeat_period_us) {
    (void)core_->send_heartbeat();
  }
  if (config_.metrics_interval_us > 0) {
    if (last_metrics_us_ == 0) {
      last_metrics_us_ = now;  // baseline: first snapshot one interval in
    } else if (now - last_metrics_us_ >= config_.metrics_interval_us) {
      last_metrics_us_ = now;
      Status em = core_->emit_metrics();
      if (!em) return em;
    }
  }
  if (connected_ && config_.ism_silence_timeout_us > 0 &&
      now - last_rx_us_ > config_.ism_silence_timeout_us) {
    BRISK_LOG_WARN << "EXS node " << config_.node
                   << ": ISM silent past timeout, dropping half-open link";
    handle_disconnect();
  }
  return Status::ok();
}

Status ExternalSensor::run() {
  return loop_->run(config_.select_timeout_us);
}

Status ExternalSensor::run_for(TimeMicros duration) {
  const TimeMicros deadline = monotonic_micros() + duration;
  while (monotonic_micros() < deadline && !loop_->stopped() && !peer_closed_) {
    auto polled = loop_->poll_once(config_.select_timeout_us);
    if (!polled) return polled.status();
  }
  return Status::ok();
}

}  // namespace brisk::lis
