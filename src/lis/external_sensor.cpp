#include "lis/external_sensor.hpp"

#include "common/logging.hpp"
#include "common/time_util.hpp"
#include "sensors/record_codec.hpp"
#include "tp/wire.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::lis {

ExsCore::ExsCore(const ExsConfig& config, shm::MultiRing rings, clk::Clock& clock,
                 FrameSink sink)
    : config_(config),
      rings_(rings),
      clock_(clock),
      sink_(std::move(sink)),
      batcher_(config, clock,
               [this](ByteBuffer payload) { return sink_(std::move(payload)); }) {
  drain_scratch_.reserve(sensors::kMaxNativeRecordBytes);
}

Result<std::size_t> ExsCore::drain_rings() {
  std::size_t drained = 0;
  const std::uint32_t slots = rings_.claimed_slots();
  // Round-robin across slots so one chatty producer cannot starve others.
  bool progress = true;
  while (progress && drained < config_.drain_burst) {
    progress = false;
    for (std::uint32_t i = 0; i < slots && drained < config_.drain_burst; ++i) {
      auto ring = rings_.slot(i);
      if (!ring) continue;
      drain_scratch_.clear();
      if (!ring.value().try_pop(drain_scratch_)) continue;
      progress = true;
      ++drained;
      batcher_.set_ring_dropped_total(rings_.total_stats().dropped);
      Status st = batcher_.add_native_record(
          ByteSpan{drain_scratch_.data(), drain_scratch_.size()}, correction_);
      if (!st) {
        ++transcode_errors_;
        BRISK_LOG_WARN << "EXS transcode failed: " << st.to_string();
      } else {
        ++records_forwarded_;
      }
    }
  }
  return drained;
}

Status ExsCore::handle_frame(ByteSpan payload) {
  xdr::Decoder decoder(payload);
  auto type = tp::peek_type(decoder);
  if (!type) return type.status();
  switch (type.value()) {
    case tp::MsgType::time_req: {
      auto req = tp::decode_time_req(decoder);
      if (!req) return req.status();
      ByteBuffer out;
      xdr::Encoder enc(out);
      tp::put_type(tp::MsgType::time_resp, enc);
      tp::encode_time_resp({req.value().request_id, corrected_now()}, enc);
      ++sync_polls_answered_;
      return sink_(std::move(out));
    }
    case tp::MsgType::adjust: {
      auto adj = tp::decode_adjust(decoder);
      if (!adj) return adj.status();
      correction_ += adj.value().delta;
      ++sync_adjustments_;
      return Status::ok();
    }
    case tp::MsgType::bye:
      return Status(Errc::closed, "ISM said bye");
    default:
      return Status(Errc::malformed, "unexpected message type at EXS");
  }
}

Status ExsCore::send_hello() {
  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(tp::MsgType::hello, enc);
  tp::encode_hello({config_.node, tp::kProtocolVersion}, enc);
  return sink_(std::move(out));
}

ExsStats ExsCore::stats() const noexcept {
  ExsStats s;
  s.records_forwarded = records_forwarded_;
  s.batches_sent = batcher_.batches_sent();
  s.bytes_sent = batcher_.bytes_sent();
  s.ring_drops_seen = const_cast<shm::MultiRing&>(rings_).total_stats().dropped;
  s.transcode_errors = transcode_errors_;
  s.sync_polls_answered = sync_polls_answered_;
  s.sync_adjustments = sync_adjustments_;
  s.correction_us = correction_;
  return s;
}

// ---- ExternalSensor ---------------------------------------------------------

ExternalSensor::ExternalSensor(const ExsConfig& config, net::TcpSocket socket)
    : config_(config), socket_(std::move(socket)) {}

Result<std::unique_ptr<ExternalSensor>> ExternalSensor::connect(
    const ExsConfig& config, shm::MultiRing rings, clk::Clock& clock,
    const std::string& ism_host, std::uint16_t ism_port) {
  Status valid = config.validate();
  if (!valid) return valid;
  auto socket = net::TcpSocket::connect(ism_host, ism_port);
  if (!socket) return socket.status();
  Status st = socket.value().set_nodelay(true);
  if (!st) return st;

  auto exs = std::unique_ptr<ExternalSensor>(
      new ExternalSensor(config, std::move(socket).value()));
  ExternalSensor* raw = exs.get();
  exs->core_ = std::make_unique<ExsCore>(
      config, rings, clock, [raw](ByteBuffer payload) {
        return net::write_frame(raw->socket_, payload.view());
      });
  st = exs->core_->send_hello();
  if (!st) return st;

  st = exs->socket_.set_nonblocking(true);
  if (!st) return st;
  st = exs->loop_.watch(exs->socket_.fd(), [raw](int) {
    Status pump = raw->pump_socket();
    if (!pump && pump.code() != Errc::would_block) {
      raw->peer_closed_ = true;
      raw->loop_.stop();
    }
  });
  if (!st) return st;
  exs->loop_.set_idle([raw] {
    Status cy = raw->cycle();
    if (!cy) {
      BRISK_LOG_ERROR << "EXS cycle failed: " << cy.to_string();
      raw->loop_.stop();
    }
  });
  return exs;
}

Status ExternalSensor::pump_socket() {
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    auto n = socket_.read_some(MutableByteSpan{chunk, sizeof chunk});
    if (!n) {
      if (n.status().code() == Errc::would_block) return Status::ok();
      return n.status();
    }
    if (n.value() == 0) return Status(Errc::closed, "ISM closed connection");
    frame_reader_.feed(ByteSpan{chunk, n.value()});
    for (;;) {
      auto frame = frame_reader_.next();
      if (!frame) return frame.status();
      if (!frame.value().has_value()) break;
      Status st = core_->handle_frame(frame.value()->view());
      if (!st) return st;
    }
  }
}

Status ExternalSensor::cycle() {
  auto drained = core_->drain_rings();
  if (!drained) return drained.status();
  return core_->maybe_flush();
}

Status ExternalSensor::run() {
  return loop_.run(config_.select_timeout_us);
}

Status ExternalSensor::run_for(TimeMicros duration) {
  const TimeMicros deadline = monotonic_micros() + duration;
  while (monotonic_micros() < deadline && !loop_.stopped() && !peer_closed_) {
    auto polled = loop_.poll_once(config_.select_timeout_us);
    if (!polled) return polled.status();
  }
  return Status::ok();
}

}  // namespace brisk::lis
