#include "lis/external_sensor.hpp"

#include <unistd.h>

#include <algorithm>

#include "common/logging.hpp"
#include "common/time_util.hpp"
#include "sensors/record_codec.hpp"
#include "tp/wire.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::lis {

ExsCore::ExsCore(const ExsConfig& config, shm::MultiRing rings, clk::Clock& clock,
                 FrameSink sink)
    : config_(config),
      rings_(rings),
      clock_(clock),
      sink_(std::move(sink)),
      batcher_(config, clock,
               [this](ByteBuffer payload) { return ship_batch(std::move(payload)); }),
      replay_(config.replay_buffer_batches, config.replay_buffer_bytes) {
  drain_scratch_.reserve(sensors::kMaxNativeRecordBytes);
  // Bridge the existing stats counters into the registry; the collector
  // runs on whatever thread snapshots (the EXS loop thread in daemons).
  metrics_.add_collector([this](metrics::SnapshotBuilder& out) {
    const ExsStats s = stats();
    out.counter("exs.records_forwarded", s.records_forwarded);
    out.counter("exs.batches_sent", s.batches_sent);
    out.counter("exs.bytes_sent", s.bytes_sent);
    out.counter("exs.ring_drops_seen", s.ring_drops_seen);
    out.counter("exs.transcode_errors", s.transcode_errors);
    out.counter("exs.sync_polls_answered", s.sync_polls_answered);
    out.counter("exs.sync_adjustments", s.sync_adjustments);
    out.counter("exs.reconnects", s.reconnects);
    out.counter("exs.batches_replayed", s.batches_replayed);
    out.counter("exs.replay_evictions", s.replay_evictions);
    out.counter("exs.heartbeats_sent", s.heartbeats_sent);
    out.counter("exs.acks_received", s.acks_received);
    out.gauge("exs.replay_pending", s.replay_pending);
    out.gauge("exs.correction_us", static_cast<std::uint64_t>(s.correction_us));
    out.counter("exs.credit_grants", s.credit_grants_received);
    out.counter("exs.paced_batches", s.paced_batches);
    out.counter("exs.credit_stalled_ms",
                static_cast<std::uint64_t>(s.credit_stalled_us) / 1000);
    out.gauge("exs.credit_window_records", s.credit_window_records);
    out.gauge("exs.credit_window_bytes", s.credit_window_bytes);
  });
}

Result<std::size_t> ExsCore::drain_rings() {
  std::size_t drained = 0;
  const std::uint32_t slots = rings_.claimed_slots();
  // Round-robin across slots so one chatty producer cannot starve others.
  bool progress = true;
  while (progress && drained < config_.drain_burst) {
    progress = false;
    for (std::uint32_t i = 0; i < slots && drained < config_.drain_burst; ++i) {
      auto ring = rings_.slot(i);
      if (!ring) continue;
      drain_scratch_.clear();
      if (!ring.value().try_pop(drain_scratch_)) continue;
      progress = true;
      ++drained;
      if (sensors::native_trace_present({drain_scratch_.data(), drain_scratch_.size()})) {
        // Node-clock stamp; the transcode below shifts every trace stamp by
        // the correction along with the record timestamp.
        (void)sensors::stamp_native_trace(drain_scratch_, sensors::TraceStage::exs_drain,
                                          clock_.now());
      }
      batcher_.set_ring_dropped_total(rings_.total_stats().dropped);
      Status st = batcher_.add_native_record(
          ByteSpan{drain_scratch_.data(), drain_scratch_.size()}, correction_);
      if (!st) {
        ++transcode_errors_;
        BRISK_LOG_WARN << "EXS transcode failed: " << st.to_string();
      } else {
        ++records_forwarded_;
      }
    }
  }
  return drained;
}

Status ExsCore::ship_batch(ByteBuffer payload) {
  if (config_.replay_buffer_batches > 0) {
    Status st = replay_.retain(payload.view());
    if (!st) return st;
    if (credit_active_) {
      // Paced mode: every send goes through the window gate, in sequence
      // order. A batch the window cannot take right now simply waits in the
      // replay buffer — the next replenishing grant pumps it out.
      const std::uint32_t seq = replay_.entries().back().batch_seq;
      st = pump_sends();
      if (!st) return st;
      if (link_ready_ && !awaiting_ack_ && next_unsent_seq_ <= seq) ++paced_batches_;
      return Status::ok();
    }
    // Link down or session not yet acknowledged: the batch stays in the
    // replay buffer and goes out — in sequence order — on the next
    // HELLO_ACK. Sending it now would let a fresh batch overtake older
    // unacked ones and the ISM would discard the replays as duplicates.
    if (!link_ready_ || awaiting_ack_) return Status::ok();
    if (!replay_.empty()) {
      const ReplayBuffer::Entry& newest = replay_.entries().back();
      next_unsent_seq_ = newest.batch_seq + 1;
      if (send_high_water_ < next_unsent_seq_) send_high_water_ = next_unsent_seq_;
    }
  } else if (!link_ready_) {
    return Status::ok();  // replay disabled: the batch is simply lost
  }
  return sink_(std::move(payload));
}

Status ExsCore::resend_unacked() {
  if (credit_active_) {
    // Go-back-N under pacing: everything unacked becomes unsent again and
    // re-ships through the window gate — the replay respects whatever
    // window the reopened session granted, not the pre-loss one.
    rewind_unsent();
    return pump_sends();
  }
  for (const auto& entry : replay_.entries()) {
    ByteBuffer copy;
    copy.append(entry.frame.view());
    Status st = sink_(std::move(copy));
    if (!st) return st;
    ++batches_replayed_;
  }
  if (!replay_.empty()) {
    next_unsent_seq_ = replay_.entries().back().batch_seq + 1;
    if (send_high_water_ < next_unsent_seq_) send_high_water_ = next_unsent_seq_;
  }
  return Status::ok();
}

std::uint64_t ExsCore::outstanding_records() const noexcept {
  std::uint64_t records = 0;
  for (const auto& entry : replay_.entries()) {
    if (entry.batch_seq >= next_unsent_seq_) break;
    records += entry.record_count;
  }
  return records;
}

std::uint64_t ExsCore::outstanding_bytes() const noexcept {
  std::uint64_t bytes = 0;
  for (const auto& entry : replay_.entries()) {
    if (entry.batch_seq >= next_unsent_seq_) break;
    bytes += entry.frame.size();
  }
  return bytes;
}

void ExsCore::rewind_unsent() noexcept {
  next_unsent_seq_ = replay_.empty() ? next_unsent_seq_ : replay_.entries().front().batch_seq;
}

void ExsCore::begin_stall() noexcept {
  if (stall_started_at_ == 0) stall_started_at_ = clock_.now();
}

void ExsCore::end_stall() noexcept {
  if (stall_started_at_ != 0) {
    const TimeMicros now = clock_.now();
    if (now > stall_started_at_) credit_stalled_us_ += now - stall_started_at_;
    stall_started_at_ = 0;
  }
}

Status ExsCore::pump_sends() {
  if (!link_ready_ || awaiting_ack_) return Status::ok();
  const auto& entries = replay_.entries();
  if (entries.empty()) {
    end_stall();
    return Status::ok();
  }
  // Evictions may have removed unsent entries from the front; the oldest
  // batch still buffered is the oldest that can ever be sent.
  if (next_unsent_seq_ < entries.front().batch_seq) {
    next_unsent_seq_ = entries.front().batch_seq;
  }
  std::uint64_t out_records = outstanding_records();
  std::uint64_t out_bytes = outstanding_bytes();
  std::size_t index = 0;
  while (index < entries.size() && entries[index].batch_seq < next_unsent_seq_) ++index;
  while (index < entries.size() && link_ready_) {
    const ReplayBuffer::Entry& entry = entries[index];
    const bool fits =
        out_records + entry.record_count <= window_records_ &&
        (window_bytes_ == 0 || out_bytes + entry.frame.size() <= window_bytes_);
    // Progress guarantee: a batch bigger than the whole window ships once
    // nothing is outstanding — a shrunk (even zero) window stalls the
    // stream, never deadlocks it.
    if (!fits && out_records > 0) {
      begin_stall();
      return Status::ok();
    }
    if (!fits && window_records_ == 0) {
      // Zero window with an empty pipe: the ISM asked for silence; wait for
      // a replenishing grant rather than forcing the batch through.
      begin_stall();
      return Status::ok();
    }
    ByteBuffer copy;
    copy.append(entry.frame.view());
    const std::uint32_t seq = entry.batch_seq;
    const std::uint32_t records = entry.record_count;
    const std::size_t bytes = entry.frame.size();
    if (seq < send_high_water_) ++batches_replayed_;
    Status st = sink_(std::move(copy));
    if (!st) return st;
    out_records += records;
    out_bytes += bytes;
    next_unsent_seq_ = seq + 1;
    if (send_high_water_ < next_unsent_seq_) send_high_water_ = next_unsent_seq_;
    ++index;
  }
  if (index >= entries.size()) end_stall();
  return Status::ok();
}

void ExsCore::apply_credit(const std::optional<tp::CreditGrant>& credit) {
  if (!credit) return;
  if (credit->incarnation != config_.incarnation) return;  // stale session's grant
  ++credit_grants_received_;
  if (!config_.pace || config_.replay_buffer_batches == 0) return;
  credit_active_ = true;
  window_records_ = credit->window_records;
  window_bytes_ = credit->window_bytes;
  // Window-aware flush: never build a batch the window cannot take whole
  // (0 keeps the configured maximum — the progress guarantee covers the
  // rare oversized leftover).
  batcher_.set_record_cap(window_records_);
}

Status ExsCore::handle_frame(ByteSpan payload) {
  xdr::Decoder decoder(payload);
  auto type = tp::peek_type(decoder);
  if (!type) return type.status();
  switch (type.value()) {
    case tp::MsgType::time_req: {
      auto req = tp::decode_time_req(decoder);
      if (!req) return req.status();
      ByteBuffer out;
      xdr::Encoder enc(out);
      tp::put_type(tp::MsgType::time_resp, enc);
      tp::encode_time_resp({req.value().request_id, corrected_now()}, enc);
      ++sync_polls_answered_;
      return sink_(std::move(out));
    }
    case tp::MsgType::adjust: {
      auto adj = tp::decode_adjust(decoder);
      if (!adj) return adj.status();
      correction_ += adj.value().delta;
      ++sync_adjustments_;
      return Status::ok();
    }
    case tp::MsgType::hello_ack: {
      auto ack = tp::decode_hello_ack(decoder);
      if (!ack) return ack.status();
      ++acks_received_;
      apply_credit(ack.value().credit);
      if (config_.replay_buffer_batches == 0) return Status::ok();
      if (ack.value().incarnation != config_.incarnation) {
        // Ack for a previous session of this connection; a fresh one is on
        // its way.
        return Status::ok();
      }
      replay_.ack(ack.value().next_expected_seq);
      awaiting_ack_ = false;
      have_last_ack_ = true;
      last_batch_ack_expected_ = ack.value().next_expected_seq;
      return resend_unacked();
    }
    case tp::MsgType::batch_ack: {
      auto ack = tp::decode_batch_ack(decoder);
      if (!ack) return ack.status();
      ++acks_received_;
      apply_credit(ack.value().credit);
      if (config_.replay_buffer_batches == 0) return Status::ok();
      const std::uint32_t expected = ack.value().next_expected_seq;
      replay_.ack(expected);
      // Two consecutive acks naming the same cursor while we hold that very
      // batch means the ISM lost it in flight (not merely lagging): go-back-N
      // resend from the cursor. A single stale ack is not enough — acks race
      // with batches legitimately in flight.
      const bool stuck = have_last_ack_ && expected == last_batch_ack_expected_;
      have_last_ack_ = true;
      last_batch_ack_expected_ = expected;
      if (stuck && !awaiting_ack_ && !replay_.empty() &&
          replay_.entries().front().batch_seq == expected) {
        return resend_unacked();
      }
      // Acked batches leave the outstanding set — the reopened window may
      // have room for batches a closed window parked in the replay buffer.
      if (credit_active_) return pump_sends();
      return Status::ok();
    }
    case tp::MsgType::heartbeat:
      return Status::ok();  // liveness only; reception already refreshed rx time
    case tp::MsgType::bye:
      saw_bye_ = true;
      return Status(Errc::closed, "ISM said bye");
    default:
      return Status(Errc::malformed, "unexpected message type at EXS");
  }
}

Status ExsCore::send_hello() {
  if (config_.replay_buffer_batches > 0) awaiting_ack_ = true;
  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(tp::MsgType::hello, enc);
  tp::encode_hello({config_.node, tp::kProtocolVersion, config_.incarnation}, enc);
  return sink_(std::move(out));
}

Status ExsCore::emit_metrics() {
  const auto samples = metrics_.snapshot();
  auto records = metrics::snapshot_to_records(samples, config_.node, clock_.now(),
                                              metrics_sequence_);
  for (const auto& record : records) {
    auto native = sensors::encode_native(record);
    if (!native) {
      ++transcode_errors_;
      continue;
    }
    // Through the batcher like any drained ring record: same correction,
    // same batching, same replay coverage across reconnects.
    Status st = batcher_.add_native_record(native.value().view(), correction_);
    if (!st) return st;
    ++records_forwarded_;
  }
  return Status::ok();
}

Status ExsCore::send_heartbeat() {
  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(tp::MsgType::heartbeat, enc);
  ++heartbeats_sent_;
  return sink_(std::move(out));
}

void ExsCore::on_disconnect() noexcept {
  link_ready_ = false;
  awaiting_ack_ = false;
  have_last_ack_ = false;
  // Down-time is reconnect territory, not window pressure; don't let it
  // inflate the stall clock.
  end_stall();
}

Status ExsCore::on_reconnected() {
  link_ready_ = true;
  ++reconnects_;
  return send_hello();
}

ExsStats ExsCore::stats() const noexcept {
  ExsStats s;
  s.records_forwarded = records_forwarded_;
  s.batches_sent = batcher_.batches_sent();
  s.bytes_sent = batcher_.bytes_sent();
  s.ring_drops_seen = const_cast<shm::MultiRing&>(rings_).total_stats().dropped;
  s.transcode_errors = transcode_errors_;
  s.sync_polls_answered = sync_polls_answered_;
  s.sync_adjustments = sync_adjustments_;
  s.correction_us = correction_;
  s.reconnects = reconnects_;
  s.batches_replayed = batches_replayed_;
  s.replay_evictions = replay_.evictions();
  s.heartbeats_sent = heartbeats_sent_;
  s.acks_received = acks_received_;
  s.replay_pending = replay_.size();
  s.credit_grants_received = credit_grants_received_;
  s.paced_batches = paced_batches_;
  s.credit_stalled_us = credit_stalled_us_;
  if (credit_active_) {
    s.credit_window_records = window_records_;
    s.credit_window_bytes = window_bytes_;
  }
  return s;
}

// ---- ExternalSensor ---------------------------------------------------------

ExternalSensor::ExternalSensor(const ExsConfig& config, net::TcpSocket socket)
    : config_(config),
      socket_(std::move(socket)),
      loop_(net::make_poller(config.poller)),
      jitter_rng_(config.node ^ config.incarnation ^ 0x9e3779b97f4a7c15ull) {}

Result<std::unique_ptr<ExternalSensor>> ExternalSensor::connect(
    const ExsConfig& config, shm::MultiRing rings, clk::Clock& clock,
    const std::string& ism_host, std::uint16_t ism_port) {
  Status valid = config.validate();
  if (!valid) return valid;
  ExsConfig effective = config;
  if (effective.incarnation == 0) {
    // One process lifetime = one incarnation; lets the ISM tell a reconnect
    // of the same EXS (resume the batch_seq cursor) from a restarted one
    // (start over at zero).
    effective.incarnation =
        (static_cast<std::uint64_t>(::getpid()) << 32) ^
        static_cast<std::uint64_t>(monotonic_micros());
    if (effective.incarnation == 0) effective.incarnation = 1;
  }
  auto socket = net::TcpSocket::connect(ism_host, ism_port);
  if (!socket) return socket.status();
  Status st = socket.value().set_nodelay(true);
  if (!st) return st;

  auto exs = std::unique_ptr<ExternalSensor>(
      new ExternalSensor(effective, std::move(socket).value()));
  ExternalSensor* raw = exs.get();
  exs->ism_host_ = ism_host;
  exs->ism_port_ = ism_port;
  exs->connected_ = true;
  exs->last_rx_us_ = monotonic_micros();
  exs->core_ = std::make_unique<ExsCore>(
      effective, rings, clock, [raw](ByteBuffer payload) {
        if (!raw->connected_) return Status::ok();  // link down: replay covers it
        Status wr = raw->write_out(payload.view());
        if (!wr) raw->handle_disconnect();
        // Transport loss is survived by the reconnect loop; the caller
        // (drain/flush) must not treat it as a fatal error.
        return Status::ok();
      });
  st = exs->core_->send_hello();
  if (!st) return st;
  if (!exs->connected_) return Status(Errc::closed, "ISM connection lost during hello");

  st = exs->socket_.set_nonblocking(true);
  if (!st) return st;
  st = exs->watch_socket();
  if (!st) return st;
  exs->loop_->set_idle([raw] {
    Status cy = raw->cycle();
    if (!cy) {
      BRISK_LOG_ERROR << "EXS cycle failed: " << cy.to_string();
      raw->loop_->stop();
    }
  });
  return exs;
}

Status ExternalSensor::watch_socket() {
  return loop_->watch(socket_.fd(), [this](int, net::Readiness) {
    Status pump = pump_socket();
    if (!pump && pump.code() != Errc::would_block) {
      if (core_->saw_bye()) {
        peer_closed_ = true;
        loop_->stop();
      } else {
        BRISK_LOG_WARN << "EXS node " << config_.node
                       << ": ISM link error: " << pump.to_string();
        handle_disconnect();
      }
    }
  });
}

Status ExternalSensor::write_out(ByteSpan frame) {
  Status st = fault_.write_frame(socket_, frame);
  if (st) last_tx_us_ = monotonic_micros();
  return st;
}

Status ExternalSensor::pump_socket() {
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    auto n = socket_.read_some(MutableByteSpan{chunk, sizeof chunk});
    if (!n) {
      if (n.status().code() == Errc::would_block) return Status::ok();
      return n.status();
    }
    if (n.value() == 0) return Status(Errc::closed, "ISM closed connection");
    last_rx_us_ = monotonic_micros();
    frame_reader_.feed(ByteSpan{chunk, n.value()});
    for (;;) {
      auto frame = frame_reader_.next();
      if (!frame) return frame.status();
      if (!frame.value().has_value()) break;
      Status st = core_->handle_frame(frame.value()->view());
      if (!st) return st;
    }
  }
}

void ExternalSensor::handle_disconnect() {
  if (!connected_) return;
  connected_ = false;
  if (socket_.valid()) {
    (void)loop_->unwatch(socket_.fd());
    socket_.close();
  }
  frame_reader_ = net::FrameReader{};
  core_->on_disconnect();
  failed_attempts_ = 0;
  next_attempt_at_ = monotonic_micros();  // first retry on the next cycle
  BRISK_LOG_WARN << "EXS node " << config_.node
                 << ": lost ISM connection, entering reconnect";
}

TimeMicros ExternalSensor::backoff_delay() {
  TimeMicros delay = config_.reconnect_backoff_base_us;
  for (std::uint32_t i = 1;
       i < failed_attempts_ && delay < config_.reconnect_backoff_cap_us; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, config_.reconnect_backoff_cap_us);
  if (config_.reconnect_jitter > 0.0) {
    std::uniform_real_distribution<double> jitter(0.0, config_.reconnect_jitter);
    delay += static_cast<TimeMicros>(static_cast<double>(delay) * jitter(jitter_rng_));
  }
  return delay;
}

void ExternalSensor::maybe_reconnect() {
  if (monotonic_micros() < next_attempt_at_) return;
  auto socket = net::TcpSocket::connect(ism_host_, ism_port_);
  if (socket) {
    net::TcpSocket fresh = std::move(socket).value();
    Status st = fresh.set_nodelay(true);
    if (st) st = fresh.set_nonblocking(true);
    if (st) {
      socket_ = std::move(fresh);
      st = watch_socket();
      if (st) {
        connected_ = true;
        failed_attempts_ = 0;
        last_rx_us_ = monotonic_micros();
        ++reconnects_;
        BRISK_LOG_INFO << "EXS node " << config_.node << ": reconnected to ISM";
        // Re-hello; the HELLO_ACK cursor triggers replay of unacked batches.
        (void)core_->on_reconnected();
        return;
      }
      (void)loop_->unwatch(socket_.fd());
      socket_.close();
    }
  }
  ++failed_attempts_;
  if (config_.max_reconnect_attempts > 0 &&
      failed_attempts_ >= config_.max_reconnect_attempts) {
    BRISK_LOG_ERROR << "EXS node " << config_.node << ": giving up after "
                    << failed_attempts_ << " reconnect attempts";
    loop_->stop();
    return;
  }
  next_attempt_at_ = monotonic_micros() + backoff_delay();
}

Status ExternalSensor::cycle() {
  if (!connected_ && !loop_->stopped()) maybe_reconnect();
  // Rings keep draining while the link is down: records flow into batches
  // and batches into the bounded replay buffer, whose evictions (if any)
  // are the declared loss.
  auto drained = core_->drain_rings();
  if (!drained) return drained.status();
  Status st = core_->maybe_flush();
  if (!st) return st;
  const TimeMicros now = monotonic_micros();
  if (connected_ && config_.heartbeat_period_us > 0 &&
      now - last_tx_us_ >= config_.heartbeat_period_us) {
    (void)core_->send_heartbeat();
  }
  if (config_.metrics_interval_us > 0) {
    if (last_metrics_us_ == 0) {
      last_metrics_us_ = now;  // baseline: first snapshot one interval in
    } else if (now - last_metrics_us_ >= config_.metrics_interval_us) {
      last_metrics_us_ = now;
      Status em = core_->emit_metrics();
      if (!em) return em;
    }
  }
  if (connected_ && config_.ism_silence_timeout_us > 0 &&
      now - last_rx_us_ > config_.ism_silence_timeout_us) {
    BRISK_LOG_WARN << "EXS node " << config_.node
                   << ": ISM silent past timeout, dropping half-open link";
    handle_disconnect();
  }
  return Status::ok();
}

Status ExternalSensor::run() {
  return loop_->run(config_.select_timeout_us);
}

Status ExternalSensor::run_for(TimeMicros duration) {
  const TimeMicros deadline = monotonic_micros() + duration;
  while (monotonic_micros() < deadline && !loop_->stopped() && !peer_closed_) {
    auto polled = loop_->poll_once(config_.select_timeout_us);
    if (!polled) return polled.status();
  }
  return Status::ok();
}

}  // namespace brisk::lis
