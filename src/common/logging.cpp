#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace brisk {
namespace {

std::atomic<LogLevel> g_level{LogLevel::warn};
std::mutex g_sink_mutex;
LogSink& sink_slot() {
  static LogSink sink;
  return sink;
}

void default_sink(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[brisk %s] %s\n", log_level_name(level), message.c_str());
}

}  // namespace

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::debug: return "debug";
    case LogLevel::info: return "info";
    case LogLevel::warn: return "warn";
    case LogLevel::error: return "error";
    case LogLevel::off: return "off";
  }
  return "?";
}

void Logging::set_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel Logging::level() noexcept { return g_level.load(std::memory_order_relaxed); }

void Logging::set_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink_slot() = std::move(sink);
}

void Logging::emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (sink_slot()) {
    sink_slot()(level, message);
  } else {
    default_sink(level, message);
  }
}

}  // namespace brisk
