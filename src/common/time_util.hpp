// Wall-clock and CPU-time helpers. Everything in BRISK that *reads time*
// goes through clk::Clock (src/clock); these free functions are the raw OS
// primitives that SystemClock and the benchmark harness build on.
#pragma once

#include <string>

#include "common/types.hpp"

namespace brisk {

/// Microseconds of UTC from the realtime clock (the paper's gettimeofday).
TimeMicros wall_time_micros() noexcept;

/// Monotonic microseconds, for intervals that must not jump with clock sync.
TimeMicros monotonic_micros() noexcept;

/// CPU time consumed by the calling process (user + system), microseconds.
TimeMicros process_cpu_micros() noexcept;

/// CPU time consumed by the calling thread, microseconds.
TimeMicros thread_cpu_micros() noexcept;

/// Sleeps the calling thread (best effort; may wake early on signals).
void sleep_micros(TimeMicros duration) noexcept;

/// "seconds.micros" rendering used by PICL output and logs.
std::string format_micros(TimeMicros t);

}  // namespace brisk
