// Growable byte buffer with a separate read cursor. The XDR codec and the
// transfer protocol build and parse messages through this type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace brisk {

using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::size_t reserve_bytes) { data_.reserve(reserve_bytes); }
  explicit ByteBuffer(ByteSpan initial) : data_(initial.begin(), initial.end()) {}

  // ---- write side -------------------------------------------------------

  void append(ByteSpan bytes) { data_.insert(data_.end(), bytes.begin(), bytes.end()); }
  void append(const void* bytes, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(bytes);
    data_.insert(data_.end(), p, p + len);
  }
  void push_back(std::uint8_t byte) { data_.push_back(byte); }
  /// Appends `count` zero bytes (XDR padding).
  void append_zeros(std::size_t count) { data_.insert(data_.end(), count, 0); }

  /// Overwrites bytes at an absolute offset (for back-patching length
  /// fields). The range must already exist.
  Status overwrite(std::size_t offset, ByteSpan bytes);

  void clear() noexcept {
    data_.clear();
    read_pos_ = 0;
  }

  // ---- read side --------------------------------------------------------

  /// Bytes remaining between the read cursor and the end.
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - read_pos_; }
  [[nodiscard]] std::size_t read_position() const noexcept { return read_pos_; }
  void seek(std::size_t pos) noexcept { read_pos_ = pos < data_.size() ? pos : data_.size(); }

  /// Copies `len` bytes into `out` and advances the cursor.
  Status read(void* out, std::size_t len) noexcept;
  /// Returns a view of the next `len` bytes and advances the cursor. The
  /// view is invalidated by any write to the buffer.
  Result<ByteSpan> read_view(std::size_t len) noexcept;
  Status skip(std::size_t len) noexcept;

  // ---- whole-buffer access ----------------------------------------------

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_.data(); }
  [[nodiscard]] ByteSpan view() const noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::vector<std::uint8_t> take() && noexcept { return std::move(data_); }

  /// Hex dump (for diagnostics and golden tests).
  [[nodiscard]] std::string hex() const;

 private:
  std::vector<std::uint8_t> data_;
  std::size_t read_pos_ = 0;
};

}  // namespace brisk
