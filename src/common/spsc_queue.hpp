// Bounded single-producer/single-consumer queue: the ISM's reader-thread →
// ordering-thread handoff. One side pushes, the other pops; no locks, just
// acquire/release on the two cursors. Capacity is fixed at construction —
// a full queue is backpressure, not allocation.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace brisk {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is the number of elements the queue can hold; rounded up to
  /// a power of two (minimum 2) so the cursor math is a mask.
  explicit SpscQueue(std::size_t capacity) {
    std::size_t rounded = 2;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when full (the element is untouched).
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate; exact only from the calling side's perspective.
  [[nodiscard]] std::size_t size() const noexcept {
    return tail_.load(std::memory_order_acquire) - head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }
  [[nodiscard]] std::size_t free_slots() const noexcept {
    const std::size_t used = size();
    return used > capacity() ? 0 : capacity() - used;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace brisk
