// Minimal leveled logger. BRISK daemons (EXS, ISM) log to stderr by default;
// tests install a capturing sink. Logging is deliberately kept off the
// sensor fast path — internal sensors never log.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace brisk {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

const char* log_level_name(LogLevel level) noexcept;

using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Process-wide logging configuration. Not thread-safe to reconfigure while
/// other threads log; configure once at startup (tests serialize this).
class Logging {
 public:
  static void set_level(LogLevel level) noexcept;
  static LogLevel level() noexcept;
  /// Replaces the sink; pass nullptr to restore the stderr default.
  static void set_sink(LogSink sink);
  static void emit(LogLevel level, const std::string& message);
};

namespace detail {

class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { Logging::emit(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace brisk

#define BRISK_LOG(severity)                                       \
  if (::brisk::LogLevel::severity < ::brisk::Logging::level()) {} \
  else ::brisk::detail::LogStatement(::brisk::LogLevel::severity)

#define BRISK_LOG_DEBUG BRISK_LOG(debug)
#define BRISK_LOG_INFO BRISK_LOG(info)
#define BRISK_LOG_WARN BRISK_LOG(warn)
#define BRISK_LOG_ERROR BRISK_LOG(error)
