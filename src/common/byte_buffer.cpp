#include "common/byte_buffer.hpp"

#include <cstring>

namespace brisk {

Status ByteBuffer::overwrite(std::size_t offset, ByteSpan bytes) {
  if (offset + bytes.size() > data_.size()) {
    return Status(Errc::out_of_range, "overwrite past end of buffer");
  }
  std::memcpy(data_.data() + offset, bytes.data(), bytes.size());
  return Status::ok();
}

Status ByteBuffer::read(void* out, std::size_t len) noexcept {
  if (remaining() < len) return Status(Errc::truncated);
  std::memcpy(out, data_.data() + read_pos_, len);
  read_pos_ += len;
  return Status::ok();
}

Result<ByteSpan> ByteBuffer::read_view(std::size_t len) noexcept {
  if (remaining() < len) return Status(Errc::truncated);
  ByteSpan view{data_.data() + read_pos_, len};
  read_pos_ += len;
  return view;
}

Status ByteBuffer::skip(std::size_t len) noexcept {
  if (remaining() < len) return Status(Errc::truncated);
  read_pos_ += len;
  return Status::ok();
}

std::string ByteBuffer::hex() const {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data_.size() * 2);
  for (std::uint8_t b : data_) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

}  // namespace brisk
