// Error handling substrate: a small status/result vocabulary used instead of
// exceptions on hot instrumentation paths (sensors must never throw into the
// target application).
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace brisk {

enum class Errc {
  ok = 0,
  invalid_argument,
  out_of_range,
  buffer_full,
  buffer_empty,
  truncated,        // decode ran off the end of the input
  malformed,        // structurally invalid wire data
  type_mismatch,    // field decoded with an unexpected type tag
  io_error,         // OS-level I/O failure (errno preserved in message)
  would_block,
  closed,           // peer or resource already shut down
  timeout,
  not_found,
  already_exists,
  unsupported,
  internal,
};

/// Human-readable name of an error code (stable, for logs and tests).
const char* errc_name(Errc code) noexcept;

/// A status: an error code plus optional context message. `ok()` statuses
/// carry no message and are cheap to copy.
class Status {
 public:
  Status() noexcept = default;
  Status(Errc code, std::string message) : code_(code), message_(std::move(message)) {}
  explicit Status(Errc code) : code_(code) {}

  static Status ok() noexcept { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == Errc::ok; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] Errc code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "code: message" rendering for logs.
  [[nodiscard]] std::string to_string() const;

 private:
  Errc code_ = Errc::ok;
  std::string message_;
};

/// Result<T>: either a value or a Status describing why there is none.
/// A minimal std::expected stand-in (the toolchain's libstdc++ predates it).
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {}  // NOLINT(google-explicit-constructor)
  Result(Errc code, std::string message) : storage_(Status(code, std::move(message))) {}

  [[nodiscard]] bool is_ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] T& value() & { return std::get<T>(storage_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(storage_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(storage_)); }

  [[nodiscard]] const Status& status() const {
    static const Status kOk{};
    if (is_ok()) return kOk;
    return std::get<Status>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace brisk
