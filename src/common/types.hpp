// Basic type aliases shared across every BRISK module.
#pragma once

#include <cstdint>

namespace brisk {

/// Microseconds of Universal Coordinated Time. The paper embeds timestamps
/// as an "eight-byte longlong_t, representing the number of microseconds of
/// UTC"; we keep the same width and unit everywhere.
using TimeMicros = std::int64_t;

/// Identifies one node of the target system (one LIS / external sensor).
using NodeId = std::uint32_t;

/// Identifies one internal sensor (one NOTICE site) within a node.
using SensorId = std::uint32_t;

/// Identifier carried by X_REASON / X_CONSEQ fields ("the user supplies
/// u_long identifiers ... determining which consequence events must follow
/// respective reason events").
using CausalId = std::uint32_t;

/// Monotonic per-node record sequence number, used to detect ring drops.
using SequenceNo = std::uint64_t;

}  // namespace brisk
