#include "common/time_util.hpp"

#include <time.h>

#include <cinttypes>
#include <cstdio>

namespace brisk {
namespace {

TimeMicros from_timespec(const timespec& ts) noexcept {
  return static_cast<TimeMicros>(ts.tv_sec) * 1'000'000 + ts.tv_nsec / 1'000;
}

TimeMicros read_clock(clockid_t id) noexcept {
  timespec ts{};
  clock_gettime(id, &ts);
  return from_timespec(ts);
}

}  // namespace

TimeMicros wall_time_micros() noexcept { return read_clock(CLOCK_REALTIME); }

TimeMicros monotonic_micros() noexcept { return read_clock(CLOCK_MONOTONIC); }

TimeMicros process_cpu_micros() noexcept { return read_clock(CLOCK_PROCESS_CPUTIME_ID); }

TimeMicros thread_cpu_micros() noexcept { return read_clock(CLOCK_THREAD_CPUTIME_ID); }

void sleep_micros(TimeMicros duration) noexcept {
  if (duration <= 0) return;
  timespec ts{};
  ts.tv_sec = duration / 1'000'000;
  ts.tv_nsec = (duration % 1'000'000) * 1'000;
  nanosleep(&ts, nullptr);
}

std::string format_micros(TimeMicros t) {
  const bool negative = t < 0;
  if (negative) t = -t;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s%" PRId64 ".%06" PRId64, negative ? "-" : "",
                t / 1'000'000, t % 1'000'000);
  return buf;
}

}  // namespace brisk
