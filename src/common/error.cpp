#include "common/error.hpp"

namespace brisk {

const char* errc_name(Errc code) noexcept {
  switch (code) {
    case Errc::ok: return "ok";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::out_of_range: return "out_of_range";
    case Errc::buffer_full: return "buffer_full";
    case Errc::buffer_empty: return "buffer_empty";
    case Errc::truncated: return "truncated";
    case Errc::malformed: return "malformed";
    case Errc::type_mismatch: return "type_mismatch";
    case Errc::io_error: return "io_error";
    case Errc::would_block: return "would_block";
    case Errc::closed: return "closed";
    case Errc::timeout: return "timeout";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::unsupported: return "unsupported";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string out = errc_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace brisk
