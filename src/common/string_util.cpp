#include "common/string_util.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace brisk {

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& items, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += separator;
    out += items[i];
  }
  return out;
}

std::optional<long long> parse_int(std::string_view text) noexcept {
  if (text.empty() || text.size() >= 32) return std::nullopt;
  char buf[32];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + text.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  if (text.empty() || text.size() >= 64) return std::nullopt;
  char buf[64];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf, &end);
  if (errno != 0 || end != buf + text.size()) return std::nullopt;
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string escape_ascii(std::string_view text) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (u < 0x20 || u == 0x7f) {
          out += "\\x";
          out.push_back(kDigits[u >> 4]);
          out.push_back(kDigits[u & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<std::string> unescape_ascii(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out.push_back(text[i]);
      continue;
    }
    if (i + 1 >= text.size()) return std::nullopt;
    char next = text[++i];
    switch (next) {
      case '\\': out.push_back('\\'); break;
      case '"': out.push_back('"'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case 'x': {
        if (i + 2 >= text.size()) return std::nullopt;
        int hi = hex_digit(text[i + 1]);
        int lo = hex_digit(text[i + 2]);
        if (hi < 0 || lo < 0) return std::nullopt;
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        break;
      }
      default: return std::nullopt;
    }
  }
  return out;
}

}  // namespace brisk
