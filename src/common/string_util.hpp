// Small string helpers used by the PICL writer, the mknotice generator and
// diagnostics. No locale dependence anywhere.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace brisk {

/// Splits on a single character; empty tokens are preserved.
std::vector<std::string> split(std::string_view text, char separator);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view separator);

/// Strict decimal parse of a signed 64-bit integer (whole string must match).
std::optional<long long> parse_int(std::string_view text) noexcept;

/// Strict parse of a double (whole string must match).
std::optional<double> parse_double(std::string_view text) noexcept;

bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Escapes a string for embedding in PICL ASCII records: backslash, quote,
/// and control characters become \xNN or standard escapes.
std::string escape_ascii(std::string_view text);

/// Inverse of escape_ascii. Returns nullopt on malformed escapes.
std::optional<std::string> unescape_ascii(std::string_view text);

}  // namespace brisk
