// Internal sensors: the NOTICE fast path.
//
// In the paper, "internal sensors use cpp macros to write instrumentation
// data records to the memory [ring]". A Sensor binds one producer (process
// or thread) to one SPSC ring slot; BRISK_NOTICE formats a record on the
// stack (no allocation, no locks, no syscalls other than the clock read)
// and pushes it in one memcpy-bounded operation.
//
// Argument wrappers give the macro dynamic typing, e.g.
//   BRISK_NOTICE(sensor, kSendEvent, x_i32(rank), x_u64(bytes), x_str("io"));
// Up to kDefaultMacroFieldLimit (8) dynamically-typed fields, as in the
// paper's stock header; mknotice-generated specializations may use the
// typed writer directly for up to 16 (see tools/mknotice).
//
// Intrusion control: compiling with BRISK_DISABLE_NOTICE defined turns
// every BRISK_NOTICE into a no-op with zero residual cost.
#pragma once

#include <array>
#include <string_view>

#include "clock/clock.hpp"
#include "sensors/record_codec.hpp"
#include "shm/ring_buffer.hpp"

namespace brisk::sensors {

// ---- dynamic-typing argument wrappers -------------------------------------

struct ArgI8 { std::int8_t v; };
struct ArgU8 { std::uint8_t v; };
struct ArgI16 { std::int16_t v; };
struct ArgU16 { std::uint16_t v; };
struct ArgI32 { std::int32_t v; };
struct ArgU32 { std::uint32_t v; };
struct ArgI64 { std::int64_t v; };
struct ArgU64 { std::uint64_t v; };
struct ArgF32 { float v; };
struct ArgF64 { double v; };
struct ArgChar { char v; };
struct ArgStr { std::string_view v; };
struct ArgTs { };                       // embeds the record's own timestamp
struct ArgTsValue { TimeMicros v; };    // embeds an explicit timestamp
struct ArgReason { CausalId v; };
struct ArgConseq { CausalId v; };

inline ArgI8 x_i8(std::int8_t v) noexcept { return {v}; }
inline ArgU8 x_u8(std::uint8_t v) noexcept { return {v}; }
inline ArgI16 x_i16(std::int16_t v) noexcept { return {v}; }
inline ArgU16 x_u16(std::uint16_t v) noexcept { return {v}; }
inline ArgI32 x_i32(std::int32_t v) noexcept { return {v}; }
inline ArgU32 x_u32(std::uint32_t v) noexcept { return {v}; }
inline ArgI64 x_i64(std::int64_t v) noexcept { return {v}; }
inline ArgU64 x_u64(std::uint64_t v) noexcept { return {v}; }
inline ArgF32 x_f32(float v) noexcept { return {v}; }
inline ArgF64 x_f64(double v) noexcept { return {v}; }
inline ArgChar x_char(char v) noexcept { return {v}; }
inline ArgStr x_str(std::string_view v) noexcept { return {v}; }
inline ArgTs x_ts() noexcept { return {}; }
inline ArgTsValue x_ts(TimeMicros v) noexcept { return {v}; }
inline ArgReason x_reason(CausalId id) noexcept { return {id}; }
inline ArgConseq x_conseq(CausalId id) noexcept { return {id}; }

/// Counters for perturbation analysis: how much work instrumentation did.
struct SensorStats {
  std::uint64_t notices = 0;        // NOTICE invocations
  std::uint64_t records_pushed = 0; // accepted by the ring
  std::uint64_t records_dropped = 0;
  std::uint64_t bytes_pushed = 0;
  std::uint64_t records_traced = 0; // carried a trace annotation
};

class Sensor {
 public:
  /// `ring` must be a slot this producer exclusively owns (claimed from a
  /// MultiRing); `clock` is the node clock (SystemClock in production).
  /// `node` and `trace_sample_rate` drive end-to-end tracing: a sampled
  /// record (deterministic hash of node/sensor/sequence vs the rate) gets a
  /// trace annotation with its ring-enqueue stamp; rate 0 disables tracing
  /// at zero per-notice cost.
  Sensor(shm::RingBuffer ring, clk::Clock& clock, NodeId node = 0,
         double trace_sample_rate = 0.0) noexcept
      : ring_(ring), clock_(&clock), node_(node), trace_sample_rate_(trace_sample_rate) {}

  /// The NOTICE entry point. Returns false when the record was dropped
  /// (ring full or record over limits) — callers typically ignore this,
  /// the drop is counted.
  template <typename... Args>
  bool notice(SensorId id, Args... args) noexcept {
    static_assert(sizeof...(Args) <= kDefaultMacroFieldLimit,
                  "BRISK_NOTICE supports at most 8 dynamically-typed fields; "
                  "generate a specialized macro with mknotice for more");
    ++stats_.notices;
    std::array<std::uint8_t, kMaxNativeRecordBytes> stack_buf;
    RecordWriter writer({stack_buf.data(), stack_buf.size()});
    const TimeMicros ts = clock_->now();
    if (!writer.begin(id, next_sequence_, ts)) return count_drop();
    if (!(add_arg(writer, ts, args) && ...)) return count_drop();
    if (trace_sample_rate_ > 0.0 &&
        trace_sampled(node_, id, next_sequence_, trace_sample_rate_)) {
      // The annotation tail must follow the last field; the drop paths
      // below leave the writer unusable, which finish() reports.
      writer.begin_trace(make_trace_id(node_, id, next_sequence_));
      writer.add_trace_stamp(TraceStage::ring_enqueue, ts);
      ++stats_.records_traced;
    }
    auto bytes = writer.finish();
    if (!bytes) return count_drop();
    if (!ring_.try_push(bytes.value())) return count_drop();
    ++next_sequence_;
    ++stats_.records_pushed;
    stats_.bytes_pushed += bytes.value().size();
    return true;
  }

  /// Escape hatch for pre-encoded records (mknotice specializations).
  bool push_encoded(ByteSpan record) noexcept {
    ++stats_.notices;
    if (!ring_.try_push(record)) return count_drop();
    ++next_sequence_;
    ++stats_.records_pushed;
    stats_.bytes_pushed += record.size();
    return true;
  }

  [[nodiscard]] SequenceNo next_sequence() const noexcept { return next_sequence_; }
  [[nodiscard]] const SensorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] shm::RingBuffer& ring() noexcept { return ring_; }
  [[nodiscard]] clk::Clock& clock() noexcept { return *clock_; }

 private:
  bool count_drop() noexcept {
    ++stats_.records_dropped;
    return false;
  }

  // One overload per wrapper keeps the fold expression monomorphic and
  // fully inlinable.
  static bool add_arg(RecordWriter& w, TimeMicros, ArgI8 a) noexcept { return w.add_i8(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgU8 a) noexcept { return w.add_u8(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgI16 a) noexcept { return w.add_i16(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgU16 a) noexcept { return w.add_u16(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgI32 a) noexcept { return w.add_i32(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgU32 a) noexcept { return w.add_u32(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgI64 a) noexcept { return w.add_i64(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgU64 a) noexcept { return w.add_u64(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgF32 a) noexcept { return w.add_f32(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgF64 a) noexcept { return w.add_f64(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgChar a) noexcept { return w.add_char(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgStr a) noexcept { return w.add_string(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros ts, ArgTs) noexcept { return w.add_ts(ts); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgTsValue a) noexcept { return w.add_ts(a.v); }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgReason a) noexcept {
    return w.add_reason(a.v);
  }
  static bool add_arg(RecordWriter& w, TimeMicros, ArgConseq a) noexcept {
    return w.add_conseq(a.v);
  }

  shm::RingBuffer ring_;
  clk::Clock* clock_;
  NodeId node_ = 0;
  double trace_sample_rate_ = 0.0;
  SequenceNo next_sequence_ = 0;
  SensorStats stats_;
};

}  // namespace brisk::sensors

// ---- the NOTICE macro ------------------------------------------------------

#ifdef BRISK_DISABLE_NOTICE
#define BRISK_NOTICE(sensor_obj, sensor_id, ...) ((void)0)
#else
/// BRISK_NOTICE(sensor, id, fields...) — the paper's NOTICE macro. Field
/// arguments are the x_* wrappers above.
#define BRISK_NOTICE(sensor_obj, sensor_id, ...) \
  (sensor_obj).notice((sensor_id)__VA_OPT__(, ) __VA_ARGS__)
#endif
