#include "sensors/trace_record.hpp"

#include <array>

namespace brisk::sensors {

bool is_trace_record(const Record& record) noexcept {
  return record.sensor == kTraceSensorId;
}

Record make_trace_record(NodeId node, SequenceNo sequence, TimeMicros timestamp,
                         const TraceAnnotation& annotation) {
  std::array<TimeMicros, kTraceStageCount> at{};
  std::uint16_t mask = 0;
  for (const TraceStamp& s : annotation.stamps) {
    const auto bit = static_cast<std::size_t>(s.stage);
    if (bit >= kTraceStageCount) continue;
    at[bit] = s.at;
    mask = static_cast<std::uint16_t>(mask | (1u << bit));
  }

  Record record;
  record.node = node;
  record.sensor = kTraceSensorId;
  record.sequence = sequence;
  record.timestamp = timestamp;
  record.fields.reserve(2 + kTraceStageCount);
  record.fields.push_back(Field::u64(annotation.trace_id));
  record.fields.push_back(Field::u16(mask));
  for (std::size_t i = 0; i < kTraceStageCount; ++i) {
    if (mask & (1u << i)) record.fields.push_back(Field::ts(at[i]));
  }
  return record;
}

Result<TraceAnnotation> decode_trace_record(const Record& record) {
  if (!is_trace_record(record)) {
    return Status(Errc::malformed, "not a trace record");
  }
  if (record.fields.size() < 2 || record.fields[0].type() != FieldType::x_u64 ||
      record.fields[1].type() != FieldType::x_u16) {
    return Status(Errc::malformed, "bad trace record schema");
  }
  const auto mask = static_cast<std::uint16_t>(record.fields[1].as_unsigned());
  if ((mask & ~((1u << kTraceStageCount) - 1u)) != 0) {
    return Status(Errc::malformed, "trace record stage mask");
  }

  TraceAnnotation annotation;
  annotation.trace_id = record.fields[0].as_unsigned();
  std::size_t next = 2;
  for (std::size_t i = 0; i < kTraceStageCount; ++i) {
    if (!(mask & (1u << i))) continue;
    if (next >= record.fields.size() || record.fields[next].type() != FieldType::x_ts) {
      return Status(Errc::malformed, "trace record stamp fields");
    }
    annotation.stamps.push_back(
        TraceStamp{static_cast<TraceStage>(i), record.fields[next].as_timestamp()});
    ++next;
  }
  if (next != record.fields.size()) {
    return Status(Errc::malformed, "trace record trailing fields");
  }
  return annotation;
}

}  // namespace brisk::sensors
