// Dynamically-typed event record fields.
//
// The paper's NOTICE sensors "are capable of writing heterogeneous records,
// with over ten basic types available for individual fields, ranging from
// bytes, to floats, to null-terminated strings", plus three *system* types:
//   X_TS     — embeds BRISK's internal timestamp (8-byte µs of UTC),
//   X_REASON — marks a causally-related "reason" event,
//   X_CONSEQ — marks the consequence that must follow that reason.
// We provide 12 basic types and the 3 system types. Type tags fit in 4 bits
// so the transfer protocol can pack them into a compressed meta header.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/error.hpp"
#include "common/types.hpp"

namespace brisk::sensors {

enum class FieldType : std::uint8_t {
  // --- basic types ---
  x_i8 = 0,
  x_u8 = 1,
  x_i16 = 2,
  x_u16 = 3,
  x_i32 = 4,
  x_u32 = 5,
  x_i64 = 6,
  x_u64 = 7,
  x_f32 = 8,
  x_f64 = 9,
  x_char = 10,
  x_string = 11,
  // --- system types ---
  x_ts = 12,      // TimeMicros, corrected by the EXS before shipping
  x_reason = 13,  // CausalId
  x_conseq = 14,  // CausalId
};

inline constexpr std::uint8_t kFieldTypeCount = 15;
inline constexpr std::size_t kMaxFieldsPerRecord = 16;  // mknotice-specialized limit
inline constexpr std::size_t kDefaultMacroFieldLimit = 8;  // paper's dynamic default
inline constexpr std::size_t kMaxStringFieldBytes = 255;

const char* field_type_name(FieldType type) noexcept;
[[nodiscard]] bool field_type_valid(std::uint8_t raw) noexcept;

/// True for the X_* system types.
[[nodiscard]] constexpr bool is_system_type(FieldType type) noexcept {
  return type == FieldType::x_ts || type == FieldType::x_reason || type == FieldType::x_conseq;
}

/// Payload bytes of a fixed-width field in the *native* (in-ring) encoding;
/// 0 for x_string (variable).
[[nodiscard]] std::size_t native_payload_size(FieldType type) noexcept;

/// Payload bytes of a field in the XDR transfer protocol (everything padded
/// to 4 bytes); 0 for x_string (variable).
[[nodiscard]] std::size_t xdr_payload_size(FieldType type) noexcept;

/// A decoded field value. The heavier std::variant representation is used on
/// the ISM/consumer side and in tests; the sensor fast path encodes directly
/// from arguments without materializing Field objects.
class Field {
 public:
  Field() : type_(FieldType::x_i32), value_(std::int64_t{0}) {}
  Field(FieldType type, std::int64_t signed_value) : type_(type), value_(signed_value) {}
  Field(FieldType type, std::uint64_t unsigned_value) : type_(type), value_(unsigned_value) {}
  Field(FieldType type, double real_value) : type_(type), value_(real_value) {}
  Field(FieldType type, std::string text) : type_(type), value_(std::move(text)) {}

  // Named constructors for every type.
  static Field i8(std::int8_t v) { return {FieldType::x_i8, static_cast<std::int64_t>(v)}; }
  static Field u8(std::uint8_t v) { return {FieldType::x_u8, static_cast<std::uint64_t>(v)}; }
  static Field i16(std::int16_t v) { return {FieldType::x_i16, static_cast<std::int64_t>(v)}; }
  static Field u16(std::uint16_t v) { return {FieldType::x_u16, static_cast<std::uint64_t>(v)}; }
  static Field i32(std::int32_t v) { return {FieldType::x_i32, static_cast<std::int64_t>(v)}; }
  static Field u32(std::uint32_t v) { return {FieldType::x_u32, static_cast<std::uint64_t>(v)}; }
  static Field i64(std::int64_t v) { return {FieldType::x_i64, v}; }
  static Field u64(std::uint64_t v) { return {FieldType::x_u64, v}; }
  static Field f32(float v) { return {FieldType::x_f32, static_cast<double>(v)}; }
  static Field f64(double v) { return {FieldType::x_f64, v}; }
  static Field ch(char v) { return {FieldType::x_char, static_cast<std::int64_t>(v)}; }
  static Field str(std::string_view v) { return {FieldType::x_string, std::string(v)}; }
  static Field ts(TimeMicros v) { return {FieldType::x_ts, static_cast<std::int64_t>(v)}; }
  static Field reason(CausalId id) { return {FieldType::x_reason, static_cast<std::uint64_t>(id)}; }
  static Field conseq(CausalId id) { return {FieldType::x_conseq, static_cast<std::uint64_t>(id)}; }

  [[nodiscard]] FieldType type() const noexcept { return type_; }

  [[nodiscard]] std::int64_t as_signed() const noexcept;
  [[nodiscard]] std::uint64_t as_unsigned() const noexcept;
  [[nodiscard]] double as_double() const noexcept;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] TimeMicros as_timestamp() const noexcept { return as_signed(); }
  [[nodiscard]] CausalId as_causal_id() const noexcept {
    return static_cast<CausalId>(as_unsigned());
  }

  /// Rendering used by PICL output and diagnostics.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Field& other) const noexcept;

 private:
  FieldType type_;
  std::variant<std::int64_t, std::uint64_t, double, std::string> value_;
};

}  // namespace brisk::sensors
