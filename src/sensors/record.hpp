// The decoded instrumentation event record.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sensors/field.hpp"
#include "sensors/trace.hpp"

namespace brisk::sensors {

/// One instrumentation event. Every record carries a creation timestamp
/// (the NOTICE macro reads the node clock); the EXS adds its clock-sync
/// correction before the record leaves the node, so at the ISM `timestamp`
/// is in the synchronized global timebase. `node` is stamped by the EXS
/// (producers inside the node do not need to know it).
struct Record {
  NodeId node = 0;
  SensorId sensor = 0;
  SequenceNo sequence = 0;
  TimeMicros timestamp = 0;
  std::vector<Field> fields;
  /// Sampled-tracing annotation; disengaged for the overwhelming majority
  /// of records. Stripped by the ISM before sink delivery, so consumers
  /// never see it on data records (see sensors/trace.hpp).
  std::optional<TraceAnnotation> trace;

  /// First field of the given type, if any.
  [[nodiscard]] const Field* find_field(FieldType type) const noexcept;

  /// Causal id if this record is marked as a reason / consequence event.
  [[nodiscard]] std::optional<CausalId> reason_id() const noexcept;
  [[nodiscard]] std::optional<CausalId> conseq_id() const noexcept;

  /// Diagnostic rendering: "node:sensor#seq @ts [f0, f1, ...]".
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Record& other) const noexcept = default;
};

/// Shifts every timebase-carrying part of a record by `delta`: the record
/// timestamp, every X_TS field, and every trace stamp. A relay ISM applies
/// its parent-relative clock correction this way before forwarding, so
/// corrections compose hop by hop through a federation tree and records
/// arrive at the root in the root's timebase. No-op for delta == 0.
void apply_time_delta(Record& record, TimeMicros delta);

}  // namespace brisk::sensors
