// Hybrid-monitoring emulation: profiling counters over the event-based IS.
//
// The paper requires that BRISK "be able to emulate other
// methods/techniques (e.g., a hybrid monitoring approach for tracing or
// profiling) by a software, event-based monitoring approach". This module
// is that emulation: application threads bump cheap atomic counters (the
// "hardware counter" role of a hybrid monitor), and a Profiler periodically
// snapshots them into ordinary NOTICE records — so profiles ride the same
// rings, transfer protocol, sorting and consumers as trace events.
#pragma once

#include <array>
#include <atomic>
#include <string>

#include "clock/clock.hpp"
#include "sensors/sensor.hpp"

namespace brisk::sensors {

/// A fixed-capacity set of named 64-bit counters, safe to bump from any
/// thread. Capacity bounds the sample-record size: one x_u64 field per
/// counter plus one x_ts, within the 16-field record limit.
class CounterSet {
 public:
  static constexpr std::size_t kMaxCounters = 15;

  /// Registers a counter; returns its index or an error when full / name
  /// taken. Not thread-safe (register everything before profiling starts).
  Result<std::size_t> register_counter(std::string name);

  void add(std::size_t index, std::uint64_t delta = 1) noexcept {
    counters_[index].fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value(std::size_t index) const noexcept {
    return counters_[index].load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] const std::string& name(std::size_t index) const { return names_[index]; }

 private:
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters_{};
  std::array<std::string, kMaxCounters> names_;
  std::size_t count_ = 0;
};

enum class SampleMode {
  deltas,     // each sample reports change since the previous sample
  absolute,   // each sample reports the running totals
};

struct ProfilerConfig {
  SensorId sensor = 0;        // sensor id of the emitted sample records
  TimeMicros period_us = 100'000;
  SampleMode mode = SampleMode::deltas;
};

/// Periodically emits one record per sampling period containing an x_ts
/// followed by one x_u64 per registered counter. Drive it from the
/// application loop (maybe_sample) or a helper thread.
class Profiler {
 public:
  Profiler(const ProfilerConfig& config, Sensor& sensor, CounterSet& counters,
           clk::Clock& clock);

  /// Emits a sample if the period elapsed; returns true if one was emitted.
  bool maybe_sample();

  /// Unconditionally emits a sample now.
  bool sample_now();

  [[nodiscard]] std::uint64_t samples_emitted() const noexcept { return samples_emitted_; }
  [[nodiscard]] const ProfilerConfig& config() const noexcept { return config_; }

 private:
  ProfilerConfig config_;
  Sensor& sensor_;
  CounterSet& counters_;
  clk::Clock& clock_;
  TimeMicros next_sample_at_;
  std::array<std::uint64_t, CounterSet::kMaxCounters> previous_{};
  std::uint64_t samples_emitted_ = 0;
};

/// Decodes a profiler sample record back into (timestamp, counter values);
/// the consumer-side inverse. Returns type_mismatch for non-sample records.
Result<std::vector<std::uint64_t>> decode_profile_sample(const Record& record);

}  // namespace brisk::sensors
