// Self-instrumentation record schema: the IS instruments itself by
// emitting its own counters as ordinary dynamically-typed records through
// the normal record path (the same way the paper treats all monitoring
// data as first-class events, not side-channel logs).
//
// A metrics record is a regular Record carrying the reserved sensor id
// kMetricsSensorId and exactly three fields:
//   [0] x_string  metric name  ("ism.records_received", "exs.reconnects")
//   [1] x_u64     metric value (monotonic count, or the gauge's level)
//   [2] x_u8      metric kind  (MetricKind)
// ISM-side snapshots carry the reserved node id kIsmMetricsNodeId; EXS-side
// snapshots ship in-band like any sensor record, so the ISM stamps them
// with the emitting node's id.
#pragma once

#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sensors/record.hpp"

namespace brisk::sensors {

/// Sensor ids at or above this value are reserved for the IS itself; user
/// sensors must stay below. The band sits at the top of 16-bit space
/// because the transfer protocol's compressed meta header carries sensor
/// ids in 16 bits — reserved records must ship in-band like any other.
inline constexpr SensorId kReservedSensorIdBase = 0xFF00u;
/// The self-instrumentation metrics sensor.
inline constexpr SensorId kMetricsSensorId = kReservedSensorIdBase + 1;
/// Node id stamped on metrics the ISM emits about itself (no EXS owns it).
inline constexpr NodeId kIsmMetricsNodeId = 0xFFFFFFFFu;

enum class MetricKind : std::uint8_t {
  counter = 0,           // monotonic
  gauge = 1,             // instantaneous level
  histogram_bucket = 2,  // one bucket of a histogram; the series name ends
                         // in ".le_<bound>" / ".le_inf" (see metrics.hpp)
};

/// One decoded metric sample.
struct MetricPoint {
  std::string name;
  std::uint64_t value = 0;
  MetricKind kind = MetricKind::counter;
};

[[nodiscard]] bool is_metrics_record(const Record& record) noexcept;

/// Builds one metrics record. `node` / `sequence` / `timestamp` are the
/// emitter's; the name must fit kMaxStringFieldBytes.
[[nodiscard]] Record make_metrics_record(NodeId node, SequenceNo sequence,
                                         TimeMicros timestamp, std::string_view name,
                                         std::uint64_t value, MetricKind kind);

/// Decodes the schema above; Errc::malformed on anything else.
[[nodiscard]] Result<MetricPoint> decode_metrics_record(const Record& record);

}  // namespace brisk::sensors
