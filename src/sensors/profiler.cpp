#include "sensors/profiler.hpp"

namespace brisk::sensors {

Result<std::size_t> CounterSet::register_counter(std::string name) {
  if (count_ >= kMaxCounters) return Status(Errc::buffer_full, "counter set full");
  for (std::size_t i = 0; i < count_; ++i) {
    if (names_[i] == name) return Status(Errc::already_exists, name);
  }
  names_[count_] = std::move(name);
  counters_[count_].store(0, std::memory_order_relaxed);
  return count_++;
}

Profiler::Profiler(const ProfilerConfig& config, Sensor& sensor, CounterSet& counters,
                   clk::Clock& clock)
    : config_(config),
      sensor_(sensor),
      counters_(counters),
      clock_(clock),
      next_sample_at_(clock.now() + config.period_us) {}

bool Profiler::maybe_sample() {
  if (clock_.now() < next_sample_at_) return false;
  next_sample_at_ += config_.period_us;
  return sample_now();
}

bool Profiler::sample_now() {
  // Format directly through the RecordWriter: the sample has a dynamic
  // number of fields, which the variadic notice() cannot express.
  std::array<std::uint8_t, kMaxNativeRecordBytes> buf;
  RecordWriter writer({buf.data(), buf.size()});
  const TimeMicros ts = clock_.now();
  if (!writer.begin(config_.sensor, sensor_.next_sequence(), ts)) return false;
  if (!writer.add_ts(ts)) return false;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    const std::uint64_t current = counters_.value(i);
    const std::uint64_t sample =
        config_.mode == SampleMode::deltas ? current - previous_[i] : current;
    previous_[i] = current;
    if (!writer.add_u64(sample)) return false;
  }
  auto bytes = writer.finish();
  if (!bytes) return false;
  const bool pushed = sensor_.push_encoded(bytes.value());
  if (pushed) ++samples_emitted_;
  return pushed;
}

Result<std::vector<std::uint64_t>> decode_profile_sample(const Record& record) {
  if (record.fields.empty() || record.fields[0].type() != FieldType::x_ts) {
    return Status(Errc::type_mismatch, "not a profile sample (no leading x_ts)");
  }
  std::vector<std::uint64_t> values;
  values.reserve(record.fields.size() - 1);
  for (std::size_t i = 1; i < record.fields.size(); ++i) {
    if (record.fields[i].type() != FieldType::x_u64) {
      return Status(Errc::type_mismatch, "profile sample fields must be x_u64");
    }
    values.push_back(record.fields[i].as_unsigned());
  }
  return values;
}

}  // namespace brisk::sensors
