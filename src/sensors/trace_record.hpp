// Trace-span export records.
//
// When the ISM delivers a traced record to its sinks, it strips the trace
// annotation from the data record (so data bytes are identical with tracing
// on and off) and emits the span list as a separate record carrying the
// reserved sensor id kTraceSensorId:
//   [0] x_u64  trace id
//   [1] x_u16  stage bitmask (bit i set = a stamp for TraceStage(i) follows)
//   [2..]      one x_ts per set bit, in ascending stage order
// The record's node is the traced record's origin node; its timestamp is
// the traced record's (synchronized) timestamp, so spans sort next to their
// subject in ordered output. Consumers (brisk_consume --trace-out) rebuild
// flame-style spans from these.
#pragma once

#include "common/error.hpp"
#include "sensors/metrics_record.hpp"
#include "sensors/record.hpp"

namespace brisk::sensors {

/// The trace-span export sensor.
inline constexpr SensorId kTraceSensorId = kReservedSensorIdBase + 2;

[[nodiscard]] bool is_trace_record(const Record& record) noexcept;

/// Builds one span-export record from a finished annotation. Stamps are
/// deduplicated per stage (last wins) and emitted in stage order.
[[nodiscard]] Record make_trace_record(NodeId node, SequenceNo sequence,
                                       TimeMicros timestamp,
                                       const TraceAnnotation& annotation);

/// Decodes the schema above; Errc::malformed on anything else.
[[nodiscard]] Result<TraceAnnotation> decode_trace_record(const Record& record);

}  // namespace brisk::sensors
