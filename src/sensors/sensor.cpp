// Sensor is header-only for inlining; this translation unit exists to give
// the module a home for any future out-of-line definitions and to make the
// header self-contained (it must compile standalone).
#include "sensors/sensor.hpp"
