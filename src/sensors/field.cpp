#include "sensors/field.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/string_util.hpp"

namespace brisk::sensors {

const char* field_type_name(FieldType type) noexcept {
  switch (type) {
    case FieldType::x_i8: return "X_I8";
    case FieldType::x_u8: return "X_U8";
    case FieldType::x_i16: return "X_I16";
    case FieldType::x_u16: return "X_U16";
    case FieldType::x_i32: return "X_I32";
    case FieldType::x_u32: return "X_U32";
    case FieldType::x_i64: return "X_I64";
    case FieldType::x_u64: return "X_U64";
    case FieldType::x_f32: return "X_F32";
    case FieldType::x_f64: return "X_F64";
    case FieldType::x_char: return "X_CHAR";
    case FieldType::x_string: return "X_STRING";
    case FieldType::x_ts: return "X_TS";
    case FieldType::x_reason: return "X_REASON";
    case FieldType::x_conseq: return "X_CONSEQ";
  }
  return "X_UNKNOWN";
}

bool field_type_valid(std::uint8_t raw) noexcept { return raw < kFieldTypeCount; }

std::size_t native_payload_size(FieldType type) noexcept {
  switch (type) {
    case FieldType::x_i8:
    case FieldType::x_u8:
    case FieldType::x_char: return 1;
    case FieldType::x_i16:
    case FieldType::x_u16: return 2;
    case FieldType::x_i32:
    case FieldType::x_u32:
    case FieldType::x_f32:
    case FieldType::x_reason:
    case FieldType::x_conseq: return 4;
    case FieldType::x_i64:
    case FieldType::x_u64:
    case FieldType::x_f64:
    case FieldType::x_ts: return 8;
    case FieldType::x_string: return 0;
  }
  return 0;
}

std::size_t xdr_payload_size(FieldType type) noexcept {
  switch (type) {
    case FieldType::x_i8:
    case FieldType::x_u8:
    case FieldType::x_char:
    case FieldType::x_i16:
    case FieldType::x_u16:
    case FieldType::x_i32:
    case FieldType::x_u32:
    case FieldType::x_f32:
    case FieldType::x_reason:
    case FieldType::x_conseq: return 4;
    case FieldType::x_i64:
    case FieldType::x_u64:
    case FieldType::x_f64:
    case FieldType::x_ts: return 8;
    case FieldType::x_string: return 0;
  }
  return 0;
}

std::int64_t Field::as_signed() const noexcept {
  if (const auto* v = std::get_if<std::int64_t>(&value_)) return *v;
  if (const auto* v = std::get_if<std::uint64_t>(&value_)) return static_cast<std::int64_t>(*v);
  if (const auto* v = std::get_if<double>(&value_)) return static_cast<std::int64_t>(*v);
  return 0;
}

std::uint64_t Field::as_unsigned() const noexcept {
  if (const auto* v = std::get_if<std::uint64_t>(&value_)) return *v;
  if (const auto* v = std::get_if<std::int64_t>(&value_)) return static_cast<std::uint64_t>(*v);
  if (const auto* v = std::get_if<double>(&value_)) return static_cast<std::uint64_t>(*v);
  return 0;
}

double Field::as_double() const noexcept {
  if (const auto* v = std::get_if<double>(&value_)) return *v;
  if (const auto* v = std::get_if<std::int64_t>(&value_)) return static_cast<double>(*v);
  if (const auto* v = std::get_if<std::uint64_t>(&value_)) return static_cast<double>(*v);
  return 0.0;
}

const std::string& Field::as_string() const {
  static const std::string kEmpty;
  if (const auto* v = std::get_if<std::string>(&value_)) return *v;
  return kEmpty;
}

std::string Field::to_string() const {
  char buf[64];
  switch (type_) {
    case FieldType::x_i8:
    case FieldType::x_i16:
    case FieldType::x_i32:
    case FieldType::x_i64:
    case FieldType::x_ts:
      std::snprintf(buf, sizeof buf, "%" PRId64, as_signed());
      return buf;
    case FieldType::x_u8:
    case FieldType::x_u16:
    case FieldType::x_u32:
    case FieldType::x_u64:
    case FieldType::x_reason:
    case FieldType::x_conseq:
      std::snprintf(buf, sizeof buf, "%" PRIu64, as_unsigned());
      return buf;
    case FieldType::x_f32:
    case FieldType::x_f64:
      std::snprintf(buf, sizeof buf, "%.17g", as_double());
      return buf;
    case FieldType::x_char:
      std::snprintf(buf, sizeof buf, "%c", static_cast<char>(as_signed()));
      return buf;
    case FieldType::x_string:
      return "\"" + escape_ascii(as_string()) + "\"";
  }
  return "?";
}

bool Field::operator==(const Field& other) const noexcept {
  return type_ == other.type_ && value_ == other.value_;
}

}  // namespace brisk::sensors
