#include "sensors/sensor_registry.hpp"

namespace brisk::sensors {

Status SensorRegistry::register_sensor(SensorInfo info) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = by_id_.try_emplace(info.id, info);
  if (!inserted) {
    const SensorInfo& existing = it->second;
    if (existing.name != info.name || existing.signature != info.signature) {
      return Status(Errc::already_exists,
                    "sensor id " + std::to_string(info.id) + " already registered as '" +
                        existing.name + "'");
    }
  }
  return Status::ok();
}

std::optional<SensorInfo> SensorRegistry::find(SensorId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

std::optional<SensorInfo> SensorRegistry::find_by_name(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, info] : by_id_) {
    if (info.name == name) return info;
  }
  return std::nullopt;
}

std::vector<SensorInfo> SensorRegistry::all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SensorInfo> out;
  out.reserve(by_id_.size());
  for (const auto& [id, info] : by_id_) out.push_back(info);
  return out;
}

std::size_t SensorRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_id_.size();
}

Status SensorRegistry::validate(const Record& record) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_id_.find(record.sensor);
  if (it == by_id_.end() || it->second.signature.empty()) return Status::ok();
  const auto& sig = it->second.signature;
  if (sig.size() != record.fields.size()) {
    return Status(Errc::type_mismatch,
                  "sensor '" + it->second.name + "' expects " + std::to_string(sig.size()) +
                      " fields, record has " + std::to_string(record.fields.size()));
  }
  for (std::size_t i = 0; i < sig.size(); ++i) {
    if (record.fields[i].type() != sig[i]) {
      return Status(Errc::type_mismatch,
                    "sensor '" + it->second.name + "' field " + std::to_string(i) +
                        " expects " + field_type_name(sig[i]) + ", got " +
                        field_type_name(record.fields[i].type()));
    }
  }
  return Status::ok();
}

SensorRegistry& SensorRegistry::global() {
  static SensorRegistry registry;
  return registry;
}

}  // namespace brisk::sensors
