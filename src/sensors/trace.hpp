// Sampled end-to-end record tracing.
//
// A record selected by the node's trace sample rate carries a compact trace
// annotation — a 64-bit trace id plus a list of (stage, timestamp) stamps —
// appended to its native encoding and transcoded onto the wire as an
// optional meta-header extension. Each pipeline stage that handles the
// record adds one stamp; the EXS applies its clock-sync correction to the
// node-side stamps when it transcodes the record, so stamps taken on
// different machines are directly comparable at the ISM.
//
// The annotation never reaches a data sink: the ISM strips it at sink
// delivery, feeds the stage-pair deltas into latency histograms, and emits
// the full span list as a separate reserved-sensor trace record (see
// trace_record.hpp), so data-record bytes are identical with tracing on
// and off.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace brisk::sensors {

/// The stage taxonomy, in pipeline order. Stamps are not required to be
/// present for every stage (a stage only stamps records that pass through
/// it), but any stamps present appear in this order.
enum class TraceStage : std::uint8_t {
  ring_enqueue = 0,    // NOTICE macro pushed the record into the shm ring
  exs_drain = 1,       // EXS popped it off the ring
  batch_seal = 2,      // batcher sealed the batch containing it
  tp_send = 3,         // batch handed to the transfer-protocol socket
  ism_ingest = 4,      // ISM ordering thread admitted the decoded record
  sorter_release = 5,  // shard's on-line sorter released it (order-safe)
  merge_release = 6,   // k-way merge released it into global order
  cre_pass = 7,        // CRE matcher passed it through
  sink_delivery = 8,   // handed to the sink registry
};

inline constexpr std::size_t kTraceStageCount = 9;
/// Upper bound on stamps one record can carry (stages may stamp at most
/// once each; the bound leaves headroom for future stages).
inline constexpr std::size_t kMaxTraceStamps = 16;

/// Short token used in metric series names and tables ("ring", "drain", ...).
[[nodiscard]] const char* trace_stage_token(TraceStage stage) noexcept;
/// Human-readable stage name ("ring enqueue", "EXS drain", ...).
[[nodiscard]] const char* trace_stage_name(TraceStage stage) noexcept;

struct TraceStamp {
  TraceStage stage = TraceStage::ring_enqueue;
  TimeMicros at = 0;

  bool operator==(const TraceStamp&) const noexcept = default;
};

/// The annotation a sampled record carries through the pipeline.
struct TraceAnnotation {
  std::uint64_t trace_id = 0;
  std::vector<TraceStamp> stamps;

  /// Appends a stamp (dropped silently once kMaxTraceStamps is reached —
  /// a truncated span list is better than an oversize record).
  void stamp(TraceStage stage, TimeMicros at);

  /// Latest stamp for `stage`, or nullptr.
  [[nodiscard]] const TraceStamp* find(TraceStage stage) const noexcept;

  bool operator==(const TraceAnnotation&) const noexcept = default;
};

/// Deterministic per-record sampling decision. Hash-based (not RNG-based)
/// so identical runs trace identical records — the determinism grid relies
/// on this. `rate` outside (0, 1) means never / always.
[[nodiscard]] bool trace_sampled(NodeId node, SensorId sensor, SequenceNo sequence,
                                 double rate) noexcept;

/// The trace id for a sampled record: a mix of (node, sensor, sequence),
/// unique per record for any realistic run length.
[[nodiscard]] std::uint64_t make_trace_id(NodeId node, SensorId sensor,
                                          SequenceNo sequence) noexcept;

}  // namespace brisk::sensors
