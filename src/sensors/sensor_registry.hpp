// Sensor metadata registry.
//
// Maps SensorId → (name, expected field signature). Consumers use it to
// render events symbolically (PICL strings, visual objects); the mknotice
// generator emits registration code alongside specialized macros; tests use
// signatures to validate records ("tools can be built based on the IS to
// instrument the target system automatically").
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "sensors/record.hpp"

namespace brisk::sensors {

struct SensorInfo {
  SensorId id = 0;
  std::string name;
  /// Expected field types, in order; empty means "any" (fully dynamic).
  std::vector<FieldType> signature;
  std::string description;
};

class SensorRegistry {
 public:
  /// Registers a sensor. Re-registering the same id with an identical
  /// definition is idempotent; a conflicting definition is an error.
  Status register_sensor(SensorInfo info);

  [[nodiscard]] std::optional<SensorInfo> find(SensorId id) const;
  [[nodiscard]] std::optional<SensorInfo> find_by_name(const std::string& name) const;
  [[nodiscard]] std::vector<SensorInfo> all() const;
  [[nodiscard]] std::size_t size() const;

  /// Checks a record against its sensor's signature (ok when the sensor is
  /// unknown or the signature is empty — dynamic sensors validate nothing).
  [[nodiscard]] Status validate(const Record& record) const;

  /// Process-wide registry used by the convenience registration macros.
  static SensorRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<SensorId, SensorInfo> by_id_;
};

}  // namespace brisk::sensors
