// Native (in-node) binary record encoding.
//
// This is the "binary structure used by the NOTICE macros": the format the
// internal sensors write into the shared-memory ring, and the format the
// ISM writes into its shared-memory output buffer for consumer tools. It is
// host-endian and unpadded — it never crosses a machine boundary; the
// transfer protocol (src/tp) transcodes it to XDR for the network.
//
// Layout:
//   u32 sensor_id | u64 sequence | i64 timestamp_us | u8 nfields | u8 flags
//   then per field: u8 type | payload
//   payload: fixed native width per type (field.hpp); x_string: u8 len + bytes.
//
// If bit 0 of the flags byte (kNativeFlagTrace) is set, a trace annotation
// tail follows the last field:
//   u64 trace_id | u8 nstamps | nstamps x (u8 stage | i64 at_us)
// Records without the flag are byte-identical to the pre-tracing format
// (the flags byte was previously reserved-zero).
//
// RecordWriter is the allocation-free fast path used by the NOTICE macros:
// it formats a record into a caller-provided (stack) buffer.
#pragma once

#include <cstring>
#include <vector>

#include "common/byte_buffer.hpp"
#include "sensors/record.hpp"

namespace brisk::sensors {

inline constexpr std::size_t kNativeHeaderBytes = 22;
/// Offset of the i64 timestamp within the native header (EXS patches it).
inline constexpr std::size_t kNativeTimestampOffset = 12;
/// Offset of the flags byte within the native header.
inline constexpr std::size_t kNativeFlagsOffset = 21;
/// Flags bit: a trace annotation tail follows the fields.
inline constexpr std::uint8_t kNativeFlagTrace = 0x01;
/// Bytes per (stage, timestamp) stamp in the annotation tail.
inline constexpr std::size_t kNativeTraceStampBytes = 9;
/// Upper bound for a full annotation tail.
inline constexpr std::size_t kMaxNativeTraceBytes =
    8 + 1 + kMaxTraceStamps * kNativeTraceStampBytes;
/// Generous upper bound for one native record (16 string fields maxed out
/// plus a full trace annotation tail).
inline constexpr std::size_t kMaxNativeRecordBytes =
    kNativeHeaderBytes + kMaxFieldsPerRecord * (2 + kMaxStringFieldBytes) +
    kMaxNativeTraceBytes;

class RecordWriter {
 public:
  /// Formats into `buffer`; the buffer must outlive the writer.
  explicit RecordWriter(MutableByteSpan buffer) noexcept : buf_(buffer) {}

  /// Starts a record. Returns false if the buffer cannot hold a header.
  bool begin(SensorId sensor, SequenceNo sequence, TimeMicros timestamp) noexcept;

  bool add_i8(std::int8_t v) noexcept { return add_fixed(FieldType::x_i8, &v, 1); }
  bool add_u8(std::uint8_t v) noexcept { return add_fixed(FieldType::x_u8, &v, 1); }
  bool add_i16(std::int16_t v) noexcept { return add_fixed(FieldType::x_i16, &v, 2); }
  bool add_u16(std::uint16_t v) noexcept { return add_fixed(FieldType::x_u16, &v, 2); }
  bool add_i32(std::int32_t v) noexcept { return add_fixed(FieldType::x_i32, &v, 4); }
  bool add_u32(std::uint32_t v) noexcept { return add_fixed(FieldType::x_u32, &v, 4); }
  bool add_i64(std::int64_t v) noexcept { return add_fixed(FieldType::x_i64, &v, 8); }
  bool add_u64(std::uint64_t v) noexcept { return add_fixed(FieldType::x_u64, &v, 8); }
  bool add_f32(float v) noexcept { return add_fixed(FieldType::x_f32, &v, 4); }
  bool add_f64(double v) noexcept { return add_fixed(FieldType::x_f64, &v, 8); }
  bool add_char(char v) noexcept { return add_fixed(FieldType::x_char, &v, 1); }
  bool add_string(std::string_view v) noexcept;
  bool add_ts(TimeMicros v) noexcept { return add_fixed(FieldType::x_ts, &v, 8); }
  bool add_reason(CausalId id) noexcept { return add_fixed(FieldType::x_reason, &id, 4); }
  bool add_conseq(CausalId id) noexcept { return add_fixed(FieldType::x_conseq, &id, 4); }

  /// Appends a decoded Field (slow path, used by tools and tests).
  bool add_field(const Field& field) noexcept;

  /// Opens a trace annotation tail. Must come after the last field — adding
  /// fields after this fails the writer. Sets the trace flag bit.
  bool begin_trace(std::uint64_t trace_id) noexcept;
  /// Appends one stamp to an open annotation tail.
  bool add_trace_stamp(TraceStage stage, TimeMicros at) noexcept;

  /// Finishes the record and returns the encoded bytes, or an error if any
  /// add_* failed (overflow / too many fields).
  Result<ByteSpan> finish() noexcept;

  [[nodiscard]] std::size_t field_count() const noexcept { return nfields_; }

 private:
  bool add_fixed(FieldType type, const void* payload, std::size_t len) noexcept;
  bool reserve(std::size_t len) noexcept;

  MutableByteSpan buf_;
  std::size_t pos_ = 0;
  std::size_t nfields_ = 0;
  std::size_t trace_count_pos_ = 0;  // 0 = no annotation open
  bool failed_ = false;
};

/// Encodes a decoded Record (minus its node id, which travels in the batch
/// header) into the native format.
Result<ByteBuffer> encode_native(const Record& record);

/// Decodes a native record. `node` is supplied by the caller (from the
/// batch/ring context).
Result<Record> decode_native(ByteSpan bytes, NodeId node = 0);

/// In-place timestamp patch: adds `delta` to the header timestamp, every
/// x_ts field, and every trace stamp of a native-encoded record. This is
/// what the EXS does when it applies the clock-sync correction without
/// fully decoding the record.
Status patch_native_timestamps(MutableByteSpan bytes, TimeMicros delta) noexcept;

/// True if the native record carries a trace annotation tail (flags bit).
[[nodiscard]] bool native_trace_present(ByteSpan bytes) noexcept;

/// Appends one stamp to the annotation tail of a traced native record
/// (grows `bytes` by kNativeTraceStampBytes). No-op success on untraced
/// records; Errc::buffer_full once the tail holds kMaxTraceStamps stamps.
Status stamp_native_trace(std::vector<std::uint8_t>& bytes, TraceStage stage,
                          TimeMicros at);

}  // namespace brisk::sensors
