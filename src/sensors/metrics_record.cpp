#include "sensors/metrics_record.hpp"

namespace brisk::sensors {

bool is_metrics_record(const Record& record) noexcept {
  return record.sensor == kMetricsSensorId;
}

Record make_metrics_record(NodeId node, SequenceNo sequence, TimeMicros timestamp,
                           std::string_view name, std::uint64_t value, MetricKind kind) {
  Record record;
  record.node = node;
  record.sensor = kMetricsSensorId;
  record.sequence = sequence;
  record.timestamp = timestamp;
  record.fields.reserve(3);
  record.fields.push_back(Field::str(name.substr(0, kMaxStringFieldBytes)));
  record.fields.push_back(Field::u64(value));
  record.fields.push_back(Field::u8(static_cast<std::uint8_t>(kind)));
  return record;
}

Result<MetricPoint> decode_metrics_record(const Record& record) {
  if (!is_metrics_record(record)) {
    return Status(Errc::malformed, "not a metrics record");
  }
  if (record.fields.size() != 3 || record.fields[0].type() != FieldType::x_string ||
      record.fields[1].type() != FieldType::x_u64 ||
      record.fields[2].type() != FieldType::x_u8) {
    return Status(Errc::malformed, "bad metrics record schema");
  }
  const std::uint8_t raw_kind = static_cast<std::uint8_t>(record.fields[2].as_unsigned());
  if (raw_kind > static_cast<std::uint8_t>(MetricKind::histogram_bucket)) {
    return Status(Errc::malformed, "bad metric kind");
  }
  MetricPoint point;
  point.name = record.fields[0].as_string();
  point.value = record.fields[1].as_unsigned();
  point.kind = static_cast<MetricKind>(raw_kind);
  return point;
}

}  // namespace brisk::sensors
