#include "sensors/event_record.hpp"

namespace brisk::sensors {

const char* event_kind_token(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::session_reaped: return "reap";
    case EventKind::session_quarantined: return "quarantine";
    case EventKind::session_rejoined: return "rejoin";
    case EventKind::session_expired: return "expire";
    case EventKind::zero_window_grant: return "zero_window";
    case EventKind::lane_drop: return "lane_drop";
    case EventKind::queue_drop: return "queue_drop";
    case EventKind::subscriber_evicted: return "sub_evict";
    case EventKind::reader_migration: return "migrate";
    case EventKind::watermark_stall: return "wm_stall";
    case EventKind::reconnect: return "reconnect";
    case EventKind::batch_gap: return "batch_gap";
  }
  return "unknown";
}

bool is_event_record(const Record& record) noexcept {
  return record.sensor == kEventSensorId;
}

Record make_event_record(NodeId node, SequenceNo sequence, TimeMicros timestamp,
                         EventKind kind, std::uint64_t subject, std::uint64_t value,
                         TimeMicros at) {
  Record record;
  record.node = node;
  record.sensor = kEventSensorId;
  record.sequence = sequence;
  record.timestamp = timestamp;
  record.fields.reserve(4);
  record.fields.push_back(Field::u8(static_cast<std::uint8_t>(kind)));
  record.fields.push_back(Field::u64(subject));
  record.fields.push_back(Field::u64(value));
  record.fields.push_back(Field::u64(static_cast<std::uint64_t>(at)));
  return record;
}

Result<EventPoint> decode_event_record(const Record& record) {
  if (!is_event_record(record)) {
    return Status(Errc::malformed, "not an event record");
  }
  if (record.fields.size() != 4 || record.fields[0].type() != FieldType::x_u8 ||
      record.fields[1].type() != FieldType::x_u64 ||
      record.fields[2].type() != FieldType::x_u64 ||
      record.fields[3].type() != FieldType::x_u64) {
    return Status(Errc::malformed, "bad event record schema");
  }
  const std::uint8_t raw_kind = static_cast<std::uint8_t>(record.fields[0].as_unsigned());
  if (raw_kind > kMaxEventKind) {
    return Status(Errc::malformed, "bad event kind");
  }
  EventPoint point;
  point.kind = static_cast<EventKind>(raw_kind);
  point.subject = record.fields[1].as_unsigned();
  point.value = record.fields[2].as_unsigned();
  point.at = static_cast<TimeMicros>(record.fields[3].as_unsigned());
  return point;
}

}  // namespace brisk::sensors
