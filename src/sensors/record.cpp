#include "sensors/record.hpp"

#include <cinttypes>
#include <cstdio>

namespace brisk::sensors {

const Field* Record::find_field(FieldType type) const noexcept {
  for (const Field& f : fields) {
    if (f.type() == type) return &f;
  }
  return nullptr;
}

std::optional<CausalId> Record::reason_id() const noexcept {
  const Field* f = find_field(FieldType::x_reason);
  if (f == nullptr) return std::nullopt;
  return f->as_causal_id();
}

std::optional<CausalId> Record::conseq_id() const noexcept {
  const Field* f = find_field(FieldType::x_conseq);
  if (f == nullptr) return std::nullopt;
  return f->as_causal_id();
}

void apply_time_delta(Record& record, TimeMicros delta) {
  if (delta == 0) return;
  record.timestamp += delta;
  for (Field& f : record.fields) {
    if (f.type() == FieldType::x_ts) f = Field::ts(f.as_timestamp() + delta);
  }
  if (record.trace) {
    for (TraceStamp& stamp : record.trace->stamps) stamp.at += delta;
  }
}

std::string Record::to_string() const {
  char head[96];
  std::snprintf(head, sizeof head, "%u:%u#%" PRIu64 " @%" PRId64 " [", node, sensor,
                sequence, timestamp);
  std::string out = head;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += ", ";
    out += field_type_name(fields[i].type());
    out += '=';
    out += fields[i].to_string();
  }
  out += ']';
  return out;
}

}  // namespace brisk::sensors
