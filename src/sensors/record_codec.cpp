#include "sensors/record_codec.hpp"

namespace brisk::sensors {
namespace {

template <typename T>
void store(std::uint8_t* at, T value) noexcept {
  std::memcpy(at, &value, sizeof value);
}

template <typename T>
T load(const std::uint8_t* at) noexcept {
  T value;
  std::memcpy(&value, at, sizeof value);
  return value;
}

// Walks the field region of a native record and returns the offset of the
// first byte after the last field (where the trace tail, if any, starts).
Result<std::size_t> native_fields_end(ByteSpan bytes) {
  if (bytes.size() < kNativeHeaderBytes) return Status(Errc::truncated, "native header");
  const std::uint8_t nfields = bytes[20];
  if (nfields > kMaxFieldsPerRecord) return Status(Errc::malformed, "field count");
  std::size_t pos = kNativeHeaderBytes;
  for (std::uint8_t i = 0; i < nfields; ++i) {
    if (pos >= bytes.size()) return Status(Errc::truncated, "field type");
    const std::uint8_t raw_type = bytes[pos++];
    if (!field_type_valid(raw_type)) return Status(Errc::malformed, "field type tag");
    const auto type = static_cast<FieldType>(raw_type);
    if (type == FieldType::x_string) {
      if (pos >= bytes.size()) return Status(Errc::truncated, "string length");
      const std::uint8_t len = bytes[pos++];
      if (pos + len > bytes.size()) return Status(Errc::truncated, "string body");
      pos += len;
      continue;
    }
    const std::size_t width = native_payload_size(type);
    if (pos + width > bytes.size()) return Status(Errc::truncated, "field body");
    pos += width;
  }
  return pos;
}

}  // namespace

bool RecordWriter::reserve(std::size_t len) noexcept {
  if (failed_ || pos_ + len > buf_.size()) {
    failed_ = true;
    return false;
  }
  return true;
}

bool RecordWriter::begin(SensorId sensor, SequenceNo sequence, TimeMicros timestamp) noexcept {
  pos_ = 0;
  nfields_ = 0;
  trace_count_pos_ = 0;
  failed_ = false;
  if (!reserve(kNativeHeaderBytes)) return false;
  store<std::uint32_t>(buf_.data(), sensor);
  store<std::uint64_t>(buf_.data() + 4, sequence);
  store<std::int64_t>(buf_.data() + kNativeTimestampOffset, timestamp);
  buf_[20] = 0;                      // nfields, patched in finish()
  buf_[kNativeFlagsOffset] = 0;      // flags
  pos_ = kNativeHeaderBytes;
  return true;
}

bool RecordWriter::add_fixed(FieldType type, const void* payload, std::size_t len) noexcept {
  if (nfields_ >= kMaxFieldsPerRecord || trace_count_pos_ != 0) {
    failed_ = true;
    return false;
  }
  if (!reserve(1 + len)) return false;
  buf_[pos_] = static_cast<std::uint8_t>(type);
  std::memcpy(buf_.data() + pos_ + 1, payload, len);
  pos_ += 1 + len;
  ++nfields_;
  return true;
}

bool RecordWriter::add_string(std::string_view v) noexcept {
  if (nfields_ >= kMaxFieldsPerRecord || v.size() > kMaxStringFieldBytes ||
      trace_count_pos_ != 0) {
    failed_ = true;
    return false;
  }
  if (!reserve(2 + v.size())) return false;
  buf_[pos_] = static_cast<std::uint8_t>(FieldType::x_string);
  buf_[pos_ + 1] = static_cast<std::uint8_t>(v.size());
  std::memcpy(buf_.data() + pos_ + 2, v.data(), v.size());
  pos_ += 2 + v.size();
  ++nfields_;
  return true;
}

bool RecordWriter::add_field(const Field& field) noexcept {
  switch (field.type()) {
    case FieldType::x_i8: return add_i8(static_cast<std::int8_t>(field.as_signed()));
    case FieldType::x_u8: return add_u8(static_cast<std::uint8_t>(field.as_unsigned()));
    case FieldType::x_i16: return add_i16(static_cast<std::int16_t>(field.as_signed()));
    case FieldType::x_u16: return add_u16(static_cast<std::uint16_t>(field.as_unsigned()));
    case FieldType::x_i32: return add_i32(static_cast<std::int32_t>(field.as_signed()));
    case FieldType::x_u32: return add_u32(static_cast<std::uint32_t>(field.as_unsigned()));
    case FieldType::x_i64: return add_i64(field.as_signed());
    case FieldType::x_u64: return add_u64(field.as_unsigned());
    case FieldType::x_f32: return add_f32(static_cast<float>(field.as_double()));
    case FieldType::x_f64: return add_f64(field.as_double());
    case FieldType::x_char: return add_char(static_cast<char>(field.as_signed()));
    case FieldType::x_string: return add_string(field.as_string());
    case FieldType::x_ts: return add_ts(field.as_timestamp());
    case FieldType::x_reason: return add_reason(field.as_causal_id());
    case FieldType::x_conseq: return add_conseq(field.as_causal_id());
  }
  failed_ = true;
  return false;
}

bool RecordWriter::begin_trace(std::uint64_t trace_id) noexcept {
  if (failed_ || pos_ < kNativeHeaderBytes || trace_count_pos_ != 0) {
    failed_ = true;
    return false;
  }
  if (!reserve(8 + 1)) return false;
  buf_[kNativeFlagsOffset] |= kNativeFlagTrace;
  store<std::uint64_t>(buf_.data() + pos_, trace_id);
  trace_count_pos_ = pos_ + 8;
  buf_[trace_count_pos_] = 0;
  pos_ += 9;
  return true;
}

bool RecordWriter::add_trace_stamp(TraceStage stage, TimeMicros at) noexcept {
  if (failed_ || trace_count_pos_ == 0 || buf_[trace_count_pos_] >= kMaxTraceStamps) {
    failed_ = true;
    return false;
  }
  if (!reserve(kNativeTraceStampBytes)) return false;
  buf_[pos_] = static_cast<std::uint8_t>(stage);
  store<std::int64_t>(buf_.data() + pos_ + 1, at);
  pos_ += kNativeTraceStampBytes;
  ++buf_[trace_count_pos_];
  return true;
}

Result<ByteSpan> RecordWriter::finish() noexcept {
  if (failed_) return Status(Errc::buffer_full, "record overflowed writer buffer");
  if (pos_ < kNativeHeaderBytes) return Status(Errc::internal, "finish before begin");
  buf_[20] = static_cast<std::uint8_t>(nfields_);
  return ByteSpan{buf_.data(), pos_};
}

Result<ByteBuffer> encode_native(const Record& record) {
  std::vector<std::uint8_t> scratch(kMaxNativeRecordBytes);
  RecordWriter writer({scratch.data(), scratch.size()});
  if (!writer.begin(record.sensor, record.sequence, record.timestamp)) {
    return Status(Errc::buffer_full, "header");
  }
  for (const Field& f : record.fields) {
    if (!writer.add_field(f)) {
      return Status(Errc::buffer_full, "too many / too large fields");
    }
  }
  if (record.trace) {
    if (!writer.begin_trace(record.trace->trace_id)) {
      return Status(Errc::buffer_full, "trace annotation");
    }
    for (const TraceStamp& s : record.trace->stamps) {
      if (!writer.add_trace_stamp(s.stage, s.at)) {
        return Status(Errc::buffer_full, "too many trace stamps");
      }
    }
  }
  auto bytes = writer.finish();
  if (!bytes) return bytes.status();
  return ByteBuffer(bytes.value());
}

Result<Record> decode_native(ByteSpan bytes, NodeId node) {
  if (bytes.size() < kNativeHeaderBytes) return Status(Errc::truncated, "native header");
  Record record;
  record.node = node;
  record.sensor = load<std::uint32_t>(bytes.data());
  record.sequence = load<std::uint64_t>(bytes.data() + 4);
  record.timestamp = load<std::int64_t>(bytes.data() + kNativeTimestampOffset);
  const std::uint8_t nfields = bytes[20];
  if (nfields > kMaxFieldsPerRecord) return Status(Errc::malformed, "field count");

  std::size_t pos = kNativeHeaderBytes;
  record.fields.reserve(nfields);
  for (std::uint8_t i = 0; i < nfields; ++i) {
    if (pos >= bytes.size()) return Status(Errc::truncated, "field type");
    const std::uint8_t raw_type = bytes[pos++];
    if (!field_type_valid(raw_type)) return Status(Errc::malformed, "field type tag");
    const auto type = static_cast<FieldType>(raw_type);
    if (type == FieldType::x_string) {
      if (pos >= bytes.size()) return Status(Errc::truncated, "string length");
      const std::uint8_t len = bytes[pos++];
      if (pos + len > bytes.size()) return Status(Errc::truncated, "string body");
      record.fields.push_back(
          Field::str({reinterpret_cast<const char*>(bytes.data() + pos), len}));
      pos += len;
      continue;
    }
    const std::size_t width = native_payload_size(type);
    if (pos + width > bytes.size()) return Status(Errc::truncated, "field body");
    const std::uint8_t* p = bytes.data() + pos;
    pos += width;
    switch (type) {
      case FieldType::x_i8: record.fields.push_back(Field::i8(load<std::int8_t>(p))); break;
      case FieldType::x_u8: record.fields.push_back(Field::u8(load<std::uint8_t>(p))); break;
      case FieldType::x_i16: record.fields.push_back(Field::i16(load<std::int16_t>(p))); break;
      case FieldType::x_u16: record.fields.push_back(Field::u16(load<std::uint16_t>(p))); break;
      case FieldType::x_i32: record.fields.push_back(Field::i32(load<std::int32_t>(p))); break;
      case FieldType::x_u32: record.fields.push_back(Field::u32(load<std::uint32_t>(p))); break;
      case FieldType::x_i64: record.fields.push_back(Field::i64(load<std::int64_t>(p))); break;
      case FieldType::x_u64: record.fields.push_back(Field::u64(load<std::uint64_t>(p))); break;
      case FieldType::x_f32: record.fields.push_back(Field::f32(load<float>(p))); break;
      case FieldType::x_f64: record.fields.push_back(Field::f64(load<double>(p))); break;
      case FieldType::x_char: record.fields.push_back(Field::ch(load<char>(p))); break;
      case FieldType::x_ts: record.fields.push_back(Field::ts(load<std::int64_t>(p))); break;
      case FieldType::x_reason:
        record.fields.push_back(Field::reason(load<std::uint32_t>(p)));
        break;
      case FieldType::x_conseq:
        record.fields.push_back(Field::conseq(load<std::uint32_t>(p)));
        break;
      case FieldType::x_string: break;  // handled above
    }
  }
  const std::uint8_t flags = bytes[kNativeFlagsOffset];
  if ((flags & ~kNativeFlagTrace) != 0) return Status(Errc::malformed, "record flags");
  if (flags & kNativeFlagTrace) {
    if (pos + 8 + 1 > bytes.size()) return Status(Errc::truncated, "trace tail");
    TraceAnnotation annotation;
    annotation.trace_id = load<std::uint64_t>(bytes.data() + pos);
    pos += 8;
    const std::uint8_t nstamps = bytes[pos++];
    if (nstamps > kMaxTraceStamps) return Status(Errc::malformed, "trace stamp count");
    annotation.stamps.reserve(nstamps);
    for (std::uint8_t i = 0; i < nstamps; ++i) {
      if (pos + kNativeTraceStampBytes > bytes.size()) {
        return Status(Errc::truncated, "trace stamp");
      }
      const std::uint8_t raw_stage = bytes[pos];
      if (raw_stage >= kTraceStageCount) return Status(Errc::malformed, "trace stage");
      annotation.stamps.push_back(TraceStamp{static_cast<TraceStage>(raw_stage),
                                             load<std::int64_t>(bytes.data() + pos + 1)});
      pos += kNativeTraceStampBytes;
    }
    record.trace = std::move(annotation);
  }
  if (pos != bytes.size()) return Status(Errc::malformed, "trailing bytes after record");
  return record;
}

Status patch_native_timestamps(MutableByteSpan bytes, TimeMicros delta) noexcept {
  if (bytes.size() < kNativeHeaderBytes) return Status(Errc::truncated, "native header");
  const auto ts = load<std::int64_t>(bytes.data() + kNativeTimestampOffset);
  store<std::int64_t>(bytes.data() + kNativeTimestampOffset, ts + delta);

  const std::uint8_t nfields = bytes[20];
  std::size_t pos = kNativeHeaderBytes;
  for (std::uint8_t i = 0; i < nfields; ++i) {
    if (pos >= bytes.size()) return Status(Errc::truncated, "field type");
    const std::uint8_t raw_type = bytes[pos++];
    if (!field_type_valid(raw_type)) return Status(Errc::malformed, "field type tag");
    const auto type = static_cast<FieldType>(raw_type);
    if (type == FieldType::x_string) {
      if (pos >= bytes.size()) return Status(Errc::truncated, "string length");
      const std::uint8_t len = bytes[pos++];
      if (pos + len > bytes.size()) return Status(Errc::truncated, "string body");
      pos += len;
      continue;
    }
    const std::size_t width = native_payload_size(type);
    if (pos + width > bytes.size()) return Status(Errc::truncated, "field body");
    if (type == FieldType::x_ts) {
      const auto embedded = load<std::int64_t>(bytes.data() + pos);
      store<std::int64_t>(bytes.data() + pos, embedded + delta);
    }
    pos += width;
  }
  if (bytes[kNativeFlagsOffset] & kNativeFlagTrace) {
    if (pos + 8 + 1 > bytes.size()) return Status(Errc::truncated, "trace tail");
    pos += 8;  // trace id
    const std::uint8_t nstamps = bytes[pos++];
    for (std::uint8_t i = 0; i < nstamps; ++i) {
      if (pos + kNativeTraceStampBytes > bytes.size()) {
        return Status(Errc::truncated, "trace stamp");
      }
      const auto at = load<std::int64_t>(bytes.data() + pos + 1);
      store<std::int64_t>(bytes.data() + pos + 1, at + delta);
      pos += kNativeTraceStampBytes;
    }
  }
  return Status::ok();
}

bool native_trace_present(ByteSpan bytes) noexcept {
  return bytes.size() >= kNativeHeaderBytes &&
         (bytes[kNativeFlagsOffset] & kNativeFlagTrace) != 0;
}

Status stamp_native_trace(std::vector<std::uint8_t>& bytes, TraceStage stage, TimeMicros at) {
  if (!native_trace_present({bytes.data(), bytes.size()})) return Status::ok();
  auto fields_end = native_fields_end({bytes.data(), bytes.size()});
  if (!fields_end) return fields_end.status();
  const std::size_t count_pos = fields_end.value() + 8;
  if (count_pos >= bytes.size()) return Status(Errc::truncated, "trace tail");
  if (bytes[count_pos] >= kMaxTraceStamps) {
    return Status(Errc::buffer_full, "trace stamp count");
  }
  ++bytes[count_pos];
  const std::size_t stamp_pos = bytes.size();
  bytes.resize(stamp_pos + kNativeTraceStampBytes);
  bytes[stamp_pos] = static_cast<std::uint8_t>(stage);
  store<std::int64_t>(bytes.data() + stamp_pos + 1, at);
  return Status::ok();
}

}  // namespace brisk::sensors
