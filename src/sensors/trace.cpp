#include "sensors/trace.hpp"

#include <algorithm>
#include <cmath>

namespace brisk::sensors {

namespace {

// splitmix64 finalizer: cheap, well-distributed, and stable across builds.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* trace_stage_token(TraceStage stage) noexcept {
  switch (stage) {
    case TraceStage::ring_enqueue: return "ring";
    case TraceStage::exs_drain: return "drain";
    case TraceStage::batch_seal: return "seal";
    case TraceStage::tp_send: return "send";
    case TraceStage::ism_ingest: return "ingest";
    case TraceStage::sorter_release: return "sort";
    case TraceStage::merge_release: return "merge";
    case TraceStage::cre_pass: return "cre";
    case TraceStage::sink_delivery: return "sink";
  }
  return "?";
}

const char* trace_stage_name(TraceStage stage) noexcept {
  switch (stage) {
    case TraceStage::ring_enqueue: return "ring enqueue";
    case TraceStage::exs_drain: return "EXS drain";
    case TraceStage::batch_seal: return "batch seal";
    case TraceStage::tp_send: return "TP send";
    case TraceStage::ism_ingest: return "ISM ingest";
    case TraceStage::sorter_release: return "sorter release";
    case TraceStage::merge_release: return "merge release";
    case TraceStage::cre_pass: return "CRE pass";
    case TraceStage::sink_delivery: return "sink delivery";
  }
  return "?";
}

void TraceAnnotation::stamp(TraceStage stage, TimeMicros at) {
  if (stamps.size() >= kMaxTraceStamps) return;
  stamps.push_back(TraceStamp{stage, at});
}

const TraceStamp* TraceAnnotation::find(TraceStage stage) const noexcept {
  const TraceStamp* found = nullptr;
  for (const TraceStamp& s : stamps) {
    if (s.stage == stage) found = &s;
  }
  return found;
}

std::uint64_t make_trace_id(NodeId node, SensorId sensor, SequenceNo sequence) noexcept {
  return mix64((static_cast<std::uint64_t>(node) << 32) ^
               (static_cast<std::uint64_t>(sensor) << 48) ^ sequence);
}

bool trace_sampled(NodeId node, SensorId sensor, SequenceNo sequence, double rate) noexcept {
  if (!(rate > 0.0)) return false;
  if (rate >= 1.0) return true;
  // Compare the record's hash against rate * 2^64; the hash doubles as the
  // trace id, so the decision costs one multiply-free comparison.
  const auto threshold =
      static_cast<std::uint64_t>(std::ldexp(rate, 64) < 1.0 ? 1.0 : std::ldexp(rate, 64));
  return make_trace_id(node, sensor, sequence) < threshold;
}

}  // namespace brisk::sensors
