// Flight-recorder event schema: structured diagnostic events (session
// lifecycle, flow-control pressure, drops, evictions, migrations,
// reconnects) emitted as ordinary records on a reserved sensor id, so the
// recorder rides the same pipeline it observes — the same treatment the
// metrics snapshots (0xFF01) and trace spans (0xFF02) get.
//
// An event record is a regular Record carrying kEventSensorId and exactly
// four fields:
//   [0] x_u8   event kind  (EventKind)
//   [1] x_u64  subject     (the node/fd/lane the event is about; 0 = none)
//   [2] x_u64  value       (kind-specific detail: a count, a window, a lag)
//   [3] x_u64  at_us       (when the event happened, emitter clock micros)
// The record's own node id names the emitting daemon (kIsmMetricsNodeId for
// a root ISM, the relay node id after relay re-stamping, the EXS node for
// sensor-side events). The record *timestamp* is the emission time, not the
// event time: events ride the ordering pipeline with the snapshot that
// carries them, and stamping them with a minutes-old event time would make
// each one a "late" record that inflates the adaptive delay window. The
// at_us field preserves the actual event time for consumers.
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"
#include "sensors/metrics_record.hpp"
#include "sensors/record.hpp"

namespace brisk::sensors {

/// The flight-recorder event sensor (reserved band, after metrics 0xFF01
/// and trace spans 0xFF02).
inline constexpr SensorId kEventSensorId = kReservedSensorIdBase + 3;

/// What happened. Values are wire-stable: appended only, never reordered.
enum class EventKind : std::uint8_t {
  session_reaped = 0,      // peer idle timeout tore the connection down
  session_quarantined = 1, // unclean close; session parked for a rejoin
  session_rejoined = 2,    // same-incarnation reconnect resumed the cursor
  session_expired = 3,     // quarantine ran out; pending records drained OOB
  zero_window_grant = 4,   // credit grant closed the peer's window
  lane_drop = 5,           // bounded fan-out/ingest lane discarded a record
  queue_drop = 6,          // bounded queue discarded (sorter overflow etc.)
  subscriber_evicted = 7,  // gateway evicted a sustained-overrun consumer
  reader_migration = 8,    // connection moved between ingest readers
  watermark_stall = 9,     // egress/queue waited on a watermark or full queue
  reconnect = 10,          // upstream link lost and re-established
  batch_gap = 11,          // batch sequence hole declared lost
};

/// Highest valid EventKind value (decode bound).
inline constexpr std::uint8_t kMaxEventKind =
    static_cast<std::uint8_t>(EventKind::batch_gap);

/// Short stable token for logs and health tables ("reap", "rejoin", ...).
[[nodiscard]] const char* event_kind_token(EventKind kind) noexcept;

/// One decoded flight-recorder event.
struct EventPoint {
  EventKind kind = EventKind::session_reaped;
  std::uint64_t subject = 0;
  std::uint64_t value = 0;
  /// When the event happened (emitter clock, microseconds).
  TimeMicros at = 0;
};

[[nodiscard]] bool is_event_record(const Record& record) noexcept;

/// Builds one event record. `node` / `sequence` / `timestamp` are the
/// emitter's (timestamp = emission time); `at` is the event time.
[[nodiscard]] Record make_event_record(NodeId node, SequenceNo sequence,
                                       TimeMicros timestamp, EventKind kind,
                                       std::uint64_t subject, std::uint64_t value,
                                       TimeMicros at);

/// Decodes the schema above; Errc::malformed on anything else.
[[nodiscard]] Result<EventPoint> decode_event_record(const Record& record);

}  // namespace brisk::sensors
