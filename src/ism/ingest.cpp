#include "ism/ingest.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "tp/wire.hpp"
#include "xdr/xdr_decoder.hpp"

namespace brisk::ism {

Result<std::unique_ptr<ReaderThread>> ReaderThread::start(const ReaderConfig& config) {
  auto to_reader = net::WakeupPipe::create();
  if (!to_reader) return to_reader.status();
  auto to_ordering = net::WakeupPipe::create();
  if (!to_ordering) return to_ordering.status();
  return std::unique_ptr<ReaderThread>(
      new ReaderThread(config, std::move(to_reader).value(), std::move(to_ordering).value()));
}

ReaderThread::ReaderThread(const ReaderConfig& config, net::WakeupPipe to_reader,
                           net::WakeupPipe to_ordering)
    : config_(config),
      poller_(net::make_poller(config.poller)),
      to_reader_(std::move(to_reader)),
      to_ordering_(std::move(to_ordering)) {
  // The command pipe is the one fd the reader always watches; its callback
  // just drains the pipe — apply_commands() runs every cycle regardless.
  (void)poller_->watch(to_reader_.fd(), [this](int, net::Readiness) { to_reader_.drain(); });
  thread_ = std::thread([this] { run(); });
}

ReaderThread::~ReaderThread() { stop_and_join(); }

void ReaderThread::add_connection(int fd, std::shared_ptr<IngestLane> lane) {
  {
    std::lock_guard<std::mutex> lock(command_mutex_);
    commands_.push_back(Command{Command::Kind::add, fd, std::move(lane)});
  }
  to_reader_.signal();
}

void ReaderThread::resume(int fd) {
  {
    std::lock_guard<std::mutex> lock(command_mutex_);
    commands_.push_back(Command{Command::Kind::resume, fd, nullptr});
  }
  to_reader_.signal();
}

void ReaderThread::remove_connection(int fd) {
  {
    std::lock_guard<std::mutex> lock(command_mutex_);
    commands_.push_back(Command{Command::Kind::remove, fd, nullptr});
  }
  to_reader_.signal();
}

void ReaderThread::stop_and_join() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  to_reader_.signal();
  thread_.join();
}

void ReaderThread::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    apply_commands();
    pushed_events_ = false;
    (void)poller_->poll_once(config_.poll_timeout_us);
    // One wakeup per cycle, however many fds produced events: the ordering
    // thread drains every lane when it wakes.
    if (pushed_events_) to_ordering_.signal();
  }
}

void ReaderThread::apply_commands() {
  std::vector<Command> pending;
  {
    std::lock_guard<std::mutex> lock(command_mutex_);
    pending.swap(commands_);
  }
  for (auto& command : pending) {
    if (command.kind == Command::Kind::add) {
      ConnState state;
      state.lane = std::move(command.lane);
      conns_.emplace(command.fd, std::move(state));
      (void)poller_->watch(command.fd, [this](int fd, net::Readiness) { on_readable(fd); });
    } else if (command.kind == Command::Kind::remove) {
      auto it = conns_.find(command.fd);
      if (it == conns_.end() || it->second.closed || it->second.released) continue;
      ConnState& conn = it->second;
      conn.released = true;
      if (!conn.stalled) (void)poller_->unwatch(command.fd);
      IngestEvent event;
      event.kind = IngestEvent::Kind::released;
      event.fd = command.fd;
      event.wire_bytes = conn.unattributed_bytes;
      conn.unattributed_bytes = 0;
      // Through emit(), behind any backlog: `released` is the last event
      // this reader ever produces for the fd, so consuming it guarantees
      // nothing of this connection's stream is still in flight here.
      emit(conn, std::move(event));
      if (pushed_events_) to_ordering_.signal();
      erase_if_done(command.fd);
    } else {  // resume
      auto it = conns_.find(command.fd);
      if (it == conns_.end() || !it->second.stalled) continue;
      ConnState& conn = it->second;
      conn.stalled = false;
      if (!flush_backlog(conn)) {
        stall(conn, command.fd);
        continue;
      }
      conn.lane->stalled.store(false, std::memory_order_release);
      if (pushed_events_) to_ordering_.signal();
      if (conn.closed || conn.released) {
        erase_if_done(command.fd);
      } else {
        (void)poller_->watch(command.fd, [this](int fd, net::Readiness) { on_readable(fd); });
      }
    }
  }
}

void ReaderThread::on_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ConnState& conn = it->second;

  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n > 0) {
      conn.unattributed_bytes += static_cast<std::size_t>(n);
      conn.frames.feed(ByteSpan(chunk, static_cast<std::size_t>(n)));
      for (;;) {
        auto frame = conn.frames.next();
        if (!frame) {
          finish(conn, fd, frame.status());
          return;
        }
        if (!frame.value().has_value()) break;
        ByteBuffer payload = std::move(*frame.value());

        IngestEvent event;
        event.fd = fd;
        event.wire_bytes = conn.unattributed_bytes;
        conn.unattributed_bytes = 0;

        // Decode DATA batches here — that is the CPU work this thread
        // exists to offload. Control frames pass through as raw payloads;
        // the ordering thread owns their semantics.
        xdr::Decoder decoder{ByteSpan(payload.data(), payload.size())};
        auto type = tp::peek_type(decoder);
        if (type && type.value() == tp::MsgType::data_batch) {
          auto batch = tp::decode_batch(decoder);
          if (batch) {
            event.kind = IngestEvent::Kind::batch;
            event.batch = std::move(batch).value();
          } else {
            finish(conn, fd, batch.status());
            return;
          }
        } else {
          // Undecodable type words included: the ordering thread counts
          // and ignores unknown frames, so pass them through untouched.
          event.kind = IngestEvent::Kind::frame;
          event.payload = std::move(payload);
        }
        emit(conn, std::move(event));
      }
      if (conn.stalled) return;  // stop reading; resume() restarts us
      if (static_cast<std::size_t>(n) < sizeof chunk) return;
      continue;
    }
    if (n == 0) {
      finish(conn, fd, Status::ok());  // orderly EOF
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    finish(conn, fd, Status(Errc::io_error, std::string("read: ") + std::strerror(errno)));
    return;
  }
}

void ReaderThread::emit(ConnState& conn, IngestEvent event) {
  const int fd = event.fd;
  // Lane first, backlog only when full — and never reorder around backlog.
  if (conn.backlog.empty() && conn.lane->queue.try_push(std::move(event))) {
    pushed_events_ = true;
    return;
  }
  conn.backlog.push_back(std::move(event));
  if (!conn.stalled) stall(conn, fd);
}

bool ReaderThread::flush_backlog(ConnState& conn) {
  while (!conn.backlog.empty()) {
    if (!conn.lane->queue.try_push(std::move(conn.backlog.front()))) return false;
    conn.backlog.pop_front();
    pushed_events_ = true;
  }
  return true;
}

void ReaderThread::stall(ConnState& conn, int fd) {
  conn.stalled = true;
  conn.lane->stalled.store(true, std::memory_order_release);
  if (!conn.closed) (void)poller_->unwatch(fd);
  // The wakeup makes the ordering thread drain this lane promptly even if
  // no other events are flowing, so the stall can clear.
  to_ordering_.signal();
}

void ReaderThread::finish(ConnState& conn, int fd, Status why) {
  if (conn.closed) return;
  conn.closed = true;
  (void)poller_->unwatch(fd);
  IngestEvent event;
  event.kind = IngestEvent::Kind::closed;
  event.fd = fd;
  event.wire_bytes = conn.unattributed_bytes;
  conn.unattributed_bytes = 0;
  event.error = std::move(why);
  emit(conn, std::move(event));
  erase_if_done(fd);
}

void ReaderThread::erase_if_done(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // Keep the state while backlog remains so the closed/released event still
  // reaches the lane; resume() retries flush_backlog until it drains.
  if ((it->second.closed || it->second.released) && it->second.backlog.empty()) {
    conns_.erase(it);
  }
}

std::size_t least_loaded_reader(const std::vector<std::size_t>& loads) noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < loads.size(); ++i) {
    if (loads[i] < loads[best]) best = i;
  }
  return best;
}

ReaderImbalance plan_reader_migration(const std::vector<double>& rates,
                                      const std::vector<std::size_t>& connections,
                                      double ratio, double min_rate) noexcept {
  ReaderImbalance plan;
  if (rates.size() < 2 || connections.size() != rates.size()) return plan;
  std::size_t busiest = 0;
  std::size_t idlest = 0;
  for (std::size_t i = 1; i < rates.size(); ++i) {
    if (rates[i] > rates[busiest]) busiest = i;
    if (rates[i] < rates[idlest]) idlest = i;
  }
  if (busiest == idlest) return plan;
  if (rates[busiest] < min_rate) return plan;
  if (rates[busiest] <= ratio * rates[idlest]) return plan;
  if (connections[busiest] < 2) return plan;
  plan.imbalanced = true;
  plan.from = busiest;
  plan.to = idlest;
  return plan;
}

int pick_connection_to_move(const std::vector<std::pair<int, double>>& candidates,
                            double rate_gap) noexcept {
  const double target = rate_gap / 2.0;
  int best_fd = -1;
  double best_distance = 0.0;
  for (const auto& [fd, rate] : candidates) {
    if (rate <= 0.0) continue;
    const double distance = rate > target ? rate - target : target - rate;
    if (best_fd < 0 || distance < best_distance ||
        (distance == best_distance && fd < best_fd)) {
      best_fd = fd;
      best_distance = distance;
    }
  }
  return best_fd;
}

std::size_t least_loaded_reader(const std::vector<double>& rates,
                                const std::vector<std::size_t>& connections) noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < rates.size(); ++i) {
    if (rates[i] < rates[best] ||
        (rates[i] == rates[best] && i < connections.size() &&
         best < connections.size() && connections[i] < connections[best])) {
      best = i;
    }
  }
  return best;
}

}  // namespace brisk::ism
