// Multi-threaded ISM ingest: reader threads that decouple readiness
// dispatch and wire decoding from the ordering pipeline.
//
// Each ReaderThread owns a net::Poller and services a share of the accepted
// EXS connections: it reads the socket, reassembles frames, and decodes
// DATA batches (the CPU-heavy XDR work) off the ordering thread. Decoded
// events flow to the ordering thread through one bounded SPSC lane per
// connection, so per-connection FIFO — the property the whole transfer
// protocol rests on ("the in-order arrival of these batches is guaranteed
// by the socket stream protocol") — is preserved by construction. The
// ordering thread keeps everything that defines ISM semantics: session
// state, batch admission, the CRE switch, the on-line sorter, clock sync,
// and the sinks.
//
// Backpressure instead of allocation: when a lane fills, the reader stops
// reading that one socket (TCP flow control pushes back to the EXS) and
// resumes when the ordering thread has drained the lane.
//
// Ownership protocol for a connection's fd:
//  * the ordering thread owns the socket (and all writes to it),
//  * the reader borrows the fd for reads between add_connection() and the
//    `closed` event it emits,
//  * the ordering thread closes the fd only after consuming that `closed`
//    event — to force one, it shutdown(2)s the socket and lets the reader
//    observe EOF. No fd is ever closed while the reader still polls it.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/spsc_queue.hpp"
#include "net/frame.hpp"
#include "net/poller.hpp"
#include "net/wakeup.hpp"
#include "tp/batch.hpp"

namespace brisk::ism {

/// One unit of work handed from a reader thread to the ordering thread.
struct IngestEvent {
  enum class Kind {
    frame,    // a non-batch frame payload, dispatched by the ordering thread
    batch,    // a DATA batch, already decoded on the reader thread
    closed,   // the connection is done (EOF, error, or malformed stream)
    released, // the reader gave the fd back (remove_connection); it emits
              // this *after* every earlier event, so re-adding the fd to
              // another reader cannot reorder the connection's stream
  };
  Kind kind = Kind::frame;
  int fd = -1;
  // No receive timestamp here: the ordering thread stamps events with its
  // own clock as it drains them, so ManualClock-driven tests stay coherent.
  std::size_t wire_bytes = 0;  // socket bytes consumed since the last event
  ByteBuffer payload;           // kind == frame
  tp::Batch batch;              // kind == batch
  Status error = Status::ok();  // kind == closed; ok = orderly EOF
};

/// Per-connection SPSC handoff lane. The assigned reader thread is the only
/// producer, the ordering thread the only consumer.
struct IngestLane {
  explicit IngestLane(std::size_t depth) : queue(depth) {}
  SpscQueue<IngestEvent> queue;
  /// Set by the reader when the lane filled and it paused reading the
  /// socket; cleared by the ordering thread, which then resume()s the fd.
  std::atomic<bool> stalled{false};
};

struct ReaderConfig {
  net::PollerBackend poller = net::PollerBackend::select;
  std::size_t lane_depth = 1024;        // IngestEvents buffered per connection
  TimeMicros poll_timeout_us = 10'000;  // reader poll cycle
};

/// Accept-time placement: the index of the reader with the fewest live
/// connections (lowest index wins ties, so placement is deterministic).
/// Round-robin degrades badly once long-lived connections churn — a reader
/// can end up owning most of the survivors; picking the least-loaded reader
/// at accept keeps the pool balanced without migrating established fds.
std::size_t least_loaded_reader(const std::vector<std::size_t>& loads) noexcept;

/// Rate-aware placement: the reader with the lowest drained-record rate
/// wins; connection counts only break rate ties (then lowest index, so
/// placement stays deterministic). Connection counts alone misplace badly
/// when traffic is skewed — one firehose node outweighs any number of idle
/// connections, and the decayed record rate is what measures that.
std::size_t least_loaded_reader(const std::vector<double>& rates,
                                const std::vector<std::size_t>& connections) noexcept;

/// One evaluation of the reader pool's balance (pure; unit-testable).
struct ReaderImbalance {
  bool imbalanced = false;  // one decay period's worth of >ratio skew
  std::size_t from = 0;     // busiest reader (valid when imbalanced)
  std::size_t to = 0;       // idlest reader
};

/// Detects a migration-worthy imbalance: the busiest reader's decayed
/// drained-record rate exceeds `ratio` times the idlest's, the busiest rate
/// is at least `min_rate` (near-zero noise must not trigger moves), and the
/// busiest reader has at least two connections (moving its only one would
/// just relocate the hot spot). Ties resolve to the lowest index, so the
/// decision is deterministic. The caller requires the imbalance to be
/// *sustained* — consecutive imbalanced evaluations across decay periods —
/// before acting, and moves at most one connection per ack period.
ReaderImbalance plan_reader_migration(const std::vector<double>& rates,
                                      const std::vector<std::size_t>& connections,
                                      double ratio, double min_rate) noexcept;

/// Picks which connection to move off the overloaded reader: the candidate
/// (fd, decayed rate) whose rate is closest to half the reader rate gap —
/// moving it levels the two readers as nearly as possible without
/// overshooting and oscillating. Candidates with zero rate are skipped
/// (moving an idle fd fixes nothing); returns -1 when none qualify.
int pick_connection_to_move(const std::vector<std::pair<int, double>>& candidates,
                            double rate_gap) noexcept;

class ReaderThread {
 public:
  /// Creates the wakeup plumbing and starts the thread.
  static Result<std::unique_ptr<ReaderThread>> start(const ReaderConfig& config);

  ~ReaderThread();
  ReaderThread(const ReaderThread&) = delete;
  ReaderThread& operator=(const ReaderThread&) = delete;

  // ---- ordering-thread side -------------------------------------------------

  /// Hands a non-blocking fd to this reader. Events appear on `lane`.
  void add_connection(int fd, std::shared_ptr<IngestLane> lane);
  /// Takes the fd away again (rebalancing): the reader stops polling it and
  /// emits a `released` event behind everything it already produced. The
  /// ordering thread re-adds the fd to the target reader only after it has
  /// consumed that event, so per-connection FIFO survives the move.
  void remove_connection(int fd);
  /// Un-stalls a connection whose lane has space again.
  void resume(int fd);
  /// Readable whenever events may be pending; watch it in the ordering
  /// thread's poller and drain_wakeup() + drain the lanes on readiness.
  [[nodiscard]] int wakeup_fd() const noexcept { return to_ordering_.fd(); }
  void drain_wakeup() noexcept { to_ordering_.drain(); }

  void stop_and_join();

 private:
  struct ConnState {
    std::shared_ptr<IngestLane> lane;
    net::FrameReader frames;
    /// Events produced while the lane was full; drained before any new read.
    std::deque<IngestEvent> backlog;
    std::size_t unattributed_bytes = 0;  // read but not yet carried by an event
    bool stalled = false;
    bool closed = false;    // closed event emitted; fd no longer polled
    bool released = false;  // released event emitted; never re-watch here
  };

  struct Command {
    enum class Kind { add, resume, remove } kind = Kind::add;
    int fd = -1;
    std::shared_ptr<IngestLane> lane;
  };

  ReaderThread(const ReaderConfig& config, net::WakeupPipe to_reader,
               net::WakeupPipe to_ordering);

  void run();
  void apply_commands();
  void on_readable(int fd);
  void emit(ConnState& conn, IngestEvent event);
  /// Moves backlog into the lane; false if the lane filled again.
  bool flush_backlog(ConnState& conn);
  void stall(ConnState& conn, int fd);
  void finish(ConnState& conn, int fd, Status why);
  void erase_if_done(int fd);

  ReaderConfig config_;
  std::unique_ptr<net::Poller> poller_;
  net::WakeupPipe to_reader_;    // ordering → reader (commands, stop)
  net::WakeupPipe to_ordering_;  // reader → ordering (events pending)
  std::mutex command_mutex_;
  std::vector<Command> commands_;
  std::map<int, ConnState> conns_;
  bool pushed_events_ = false;  // events emitted this poll cycle
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace brisk::ism
