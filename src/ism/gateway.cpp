#include "ism/gateway.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "clock/clock.hpp"
#include "common/logging.hpp"
#include "common/time_util.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::ism {

namespace {

/// Below this many pending outbox bytes, queued frames are moved into the
/// outbox — keeps the socket fed without letting one subscriber's encode
/// burst monopolize the fan-out cycle.
constexpr std::size_t kOutboxLowWater = 64u << 10;

/// Read chunk for consumer control frames (SUBSCRIBE/UNSUBSCRIBE are tiny).
constexpr std::size_t kReadChunk = 4096;

std::shared_ptr<const ByteBuffer> encode_data_frame(const sensors::Record& record) {
  auto payload = encode_output_record(record);
  if (!payload) return nullptr;
  auto frame = std::make_shared<ByteBuffer>();
  xdr::Encoder enc(*frame);
  tp::put_type(tp::MsgType::sub_data, enc);
  enc.put_opaque(payload.value().view());
  return frame;
}

ByteBuffer encode_agg_frame(const tp::AggWindow& window) {
  ByteBuffer frame;
  xdr::Encoder enc(frame);
  tp::put_type(tp::MsgType::sub_agg, enc);
  tp::encode_agg_window(window, enc);
  return frame;
}

}  // namespace

Status GatewayConfig::validate() const {
  if (lane_records < 2) return Status(Errc::invalid_argument, "gateway lane too small");
  if (queue_records == 0) return Status(Errc::invalid_argument, "gateway queue depth 0");
  if (max_queue_records < queue_records) {
    return Status(Errc::invalid_argument, "gateway max queue < default queue");
  }
  if (outbox_bytes < 4096) return Status(Errc::invalid_argument, "gateway outbox too small");
  if (agg_window_us <= 0) return Status(Errc::invalid_argument, "gateway agg window <= 0");
  if (overrun_grace_us < 0) return Status(Errc::invalid_argument, "gateway overrun grace < 0");
  if (max_subscribers == 0) return Status(Errc::invalid_argument, "gateway max subscribers 0");
  return Status::ok();
}

ConsumerGateway::ConsumerGateway(const GatewayConfig& config) : config_(config) {}

Result<std::shared_ptr<ConsumerGateway>> ConsumerGateway::create(const GatewayConfig& config) {
  Status valid = config.validate();
  if (!valid) return valid;
  std::shared_ptr<ConsumerGateway> gateway(new ConsumerGateway(config));
  if (config.tcp_enabled) {
    Status st = gateway->start_tcp();
    if (!st) return st;
  }
  return gateway;
}

ConsumerGateway::~ConsumerGateway() {
  if (tcp_running_.load(std::memory_order_acquire)) {
    stop_.store(true, std::memory_order_release);
    wakeup_.signal();
    if (fanout_thread_.joinable()) fanout_thread_.join();
  }
}

// ---- pipeline-facing Sink ----------------------------------------------------

Status ConsumerGateway::accept(const sensors::Record& record) {
  records_in_.fetch_add(1, std::memory_order_relaxed);

  const auto locals = local_snapshot();
  Status first_error = Status::ok();
  for (const auto& sub : *locals) {
    if (!sub->filter.matches(record)) continue;
    sub->counters->matched.fetch_add(1, std::memory_order_relaxed);
    if (sub->kind == tp::SubscriptionKind::stream) {
      Status st = sub->sink->accept(record);
      if (st.is_ok()) {
        sub->counters->delivered.fetch_add(1, std::memory_order_relaxed);
      } else if (first_error.is_ok()) {
        first_error = st;
      }
    } else {
      std::lock_guard<std::mutex> lk(agg_mutex_);
      agg_accumulate(sub->agg, sub->window_us, record, [&](const tp::AggWindow& w) {
        sub->agg_fn(w);
        sub->counters->agg_windows.fetch_add(1, std::memory_order_relaxed);
        sub->counters->delivered.fetch_add(1, std::memory_order_relaxed);
        agg_windows_.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }

  // Feed the TCP fan-out thread only while someone is subscribed — an idle
  // gateway costs the pipeline one atomic load per record.
  if (tcp_running_.load(std::memory_order_relaxed) &&
      tcp_subscriber_count_.load(std::memory_order_relaxed) > 0) {
    const bool was_empty = lane_->empty();
    sensors::Record copy = record;
    if (!lane_->try_push(std::move(copy))) {
      const std::uint64_t total = lane_drops_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (auto* flight = flight_.load(std::memory_order_acquire)) {
        flight->record(sensors::EventKind::lane_drop, 0, total,
                       clk::SystemClock::instance().now());
      }
    } else if (was_empty) {
      wakeup_.signal();
    }
  }
  return first_error;
}

Status ConsumerGateway::flush() {
  const auto locals = local_snapshot();
  Status first_error = Status::ok();
  for (const auto& sub : *locals) {
    if (sub->kind != tp::SubscriptionKind::stream) continue;
    Status st = sub->sink->flush();
    if (!st && first_error.is_ok()) first_error = st;
  }
  return first_error;
}

void ConsumerGateway::tick(TimeMicros watermark) {
  const auto locals = local_snapshot();
  bool any_agg = false;
  for (const auto& sub : *locals) {
    if (sub->kind == tp::SubscriptionKind::stream) {
      sub->sink->tick(watermark);
    } else {
      any_agg = true;
    }
  }
  if (any_agg) {
    std::lock_guard<std::mutex> lk(agg_mutex_);
    for (const auto& sub : *locals) {
      if (sub->kind != tp::SubscriptionKind::aggregate) continue;
      agg_close_due(sub->agg, watermark, [&](const tp::AggWindow& w) {
        sub->agg_fn(w);
        sub->counters->agg_windows.fetch_add(1, std::memory_order_relaxed);
        sub->counters->delivered.fetch_add(1, std::memory_order_relaxed);
        agg_windows_.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  if (tcp_running_.load(std::memory_order_relaxed) &&
      tcp_subscriber_count_.load(std::memory_order_relaxed) > 0) {
    const TimeMicros prev = tcp_tick_watermark_.load(std::memory_order_relaxed);
    if (watermark > prev) {
      tcp_tick_watermark_.store(watermark, std::memory_order_release);
      wakeup_.signal();
    }
  }
}

Status ConsumerGateway::drain() {
  // Seal every open in-process aggregation window, then drain the sinks.
  const auto locals = local_snapshot();
  {
    std::lock_guard<std::mutex> lk(agg_mutex_);
    for (const auto& sub : *locals) {
      if (sub->kind != tp::SubscriptionKind::aggregate) continue;
      agg_close_due(sub->agg, std::numeric_limits<TimeMicros>::max(),
                    [&](const tp::AggWindow& w) {
                      sub->agg_fn(w);
                      sub->counters->agg_windows.fetch_add(1, std::memory_order_relaxed);
                      sub->counters->delivered.fetch_add(1, std::memory_order_relaxed);
                      agg_windows_.fetch_add(1, std::memory_order_relaxed);
                    });
    }
  }
  Status first_error = Status::ok();
  for (const auto& sub : *locals) {
    if (sub->kind != tp::SubscriptionKind::stream) continue;
    Status st = sub->sink->drain();
    if (!st && first_error.is_ok()) first_error = st;
  }

  // Hand the fan-out thread a drain request: flush the lane, seal TCP
  // aggregation windows, push queues out. Bounded wait — a consumer that
  // stopped reading must not wedge ISM shutdown.
  if (tcp_running_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lk(drain_mutex_);
      drain_done_ = false;
    }
    drain_requested_.store(true, std::memory_order_release);
    wakeup_.signal();
    std::unique_lock<std::mutex> lk(drain_mutex_);
    const bool done = drain_cv_.wait_for(
        lk, std::chrono::microseconds(config_.drain_timeout_us), [this] { return drain_done_; });
    if (!done && first_error.is_ok()) {
      first_error = Status(Errc::timeout, "gateway drain timed out");
    }
  }
  return first_error;
}

// ---- in-process subscriptions ------------------------------------------------

Status ConsumerGateway::add_local(std::shared_ptr<LocalSub> sub) {
  if (sub->name.empty()) return Status(Errc::invalid_argument, "empty subscriber name");
  std::lock_guard<std::mutex> lk(mutation_mutex_);
  const auto current = local_snapshot();
  for (const auto& existing : *current) {
    if (existing->name == sub->name) {
      return Status(Errc::already_exists, "subscriber '" + sub->name + "' already registered");
    }
  }
  add_stats_entry(sub->name, /*tcp=*/false, sub->counters);
  auto next = std::make_shared<LocalList>(*current);
  next->push_back(std::move(sub));
  std::atomic_store_explicit(&locals_, std::shared_ptr<const LocalList>(std::move(next)),
                             std::memory_order_release);
  return Status::ok();
}

Status ConsumerGateway::subscribe(std::string name, std::shared_ptr<Sink> sink,
                                  SubscriptionOptions options) {
  if (!sink) return Status(Errc::invalid_argument, "null sink");
  auto sub = std::make_shared<LocalSub>();
  sub->name = std::move(name);
  sub->filter = std::move(options.filter);
  sub->kind = tp::SubscriptionKind::stream;
  sub->sink = std::move(sink);
  sub->counters = std::make_shared<SubCounters>();
  return add_local(std::move(sub));
}

Status ConsumerGateway::subscribe_aggregate(std::string name, AggWindowFn fn,
                                            SubscriptionOptions options) {
  if (!fn) return Status(Errc::invalid_argument, "null aggregate callback");
  auto sub = std::make_shared<LocalSub>();
  sub->name = std::move(name);
  sub->filter = std::move(options.filter);
  sub->kind = tp::SubscriptionKind::aggregate;
  sub->agg_fn = std::move(fn);
  sub->window_us = options.agg_window_us > 0 ? options.agg_window_us : config_.agg_window_us;
  sub->counters = std::make_shared<SubCounters>();
  return add_local(std::move(sub));
}

bool ConsumerGateway::unsubscribe(const std::string& name) {
  std::lock_guard<std::mutex> lk(mutation_mutex_);
  const auto current = local_snapshot();
  auto next = std::make_shared<LocalList>();
  next->reserve(current->size());
  std::shared_ptr<LocalSub> removed;
  for (const auto& sub : *current) {
    if (!removed && sub->name == name) {
      removed = sub;
      continue;
    }
    next->push_back(sub);
  }
  if (!removed) return false;
  std::atomic_store_explicit(&locals_, std::shared_ptr<const LocalList>(std::move(next)),
                             std::memory_order_release);
  removed->counters->connected.store(false, std::memory_order_relaxed);
  return true;
}

std::shared_ptr<Sink> ConsumerGateway::find(const std::string& name) const {
  const auto current = local_snapshot();
  for (const auto& sub : *current) {
    if (sub->name == name) return sub->sink;
  }
  return nullptr;
}

std::vector<std::string> ConsumerGateway::names() const {
  const auto current = local_snapshot();
  std::vector<std::string> out;
  out.reserve(current->size());
  for (const auto& sub : *current) out.push_back(sub->name);
  return out;
}

std::size_t ConsumerGateway::subscriber_count() const {
  return local_snapshot()->size() + tcp_subscriber_count_.load(std::memory_order_relaxed);
}

// ---- aggregation -------------------------------------------------------------

template <typename EmitFn>
void ConsumerGateway::agg_accumulate(AggState& state, TimeMicros window_us,
                                     const sensors::Record& record, EmitFn&& emit) {
  // Windows are aligned to absolute timestamp multiples of the window width
  // (floor division toward -inf), so every subscriber with the same width
  // sees the same boundaries regardless of when it joined.
  TimeMicros start = record.timestamp / window_us * window_us;
  if (record.timestamp < 0 && record.timestamp % window_us != 0) start -= window_us;

  if (state.open && record.timestamp >= state.window_end) {
    emit(agg_seal(state));
  }
  if (!state.open) {
    state.open = true;
    state.window_start = start;
    state.window_end = start + window_us;
  }
  // A late record (OOB expiry drain, merge inversion) below the open window
  // still counts into it — the merge promised no *in-order* record behind
  // the watermark, not that none exist.
  auto& key = state.keys[{record.node, record.sensor}];
  if (key.has_last) {
    const TimeMicros gap = record.timestamp - key.last_ts;
    if (!key.gaps) key.gaps = std::make_unique<metrics::Histogram>();
    key.gaps->record(gap > 0 ? static_cast<std::uint64_t>(gap) : 0);
  }
  key.count++;
  key.last_ts = record.timestamp;
  key.has_last = true;
}

template <typename EmitFn>
void ConsumerGateway::agg_close_due(AggState& state, TimeMicros watermark, EmitFn&& emit) {
  if (state.open && state.window_end <= watermark) {
    emit(agg_seal(state));
  }
}

tp::AggWindow ConsumerGateway::agg_seal(AggState& state) {
  tp::AggWindow window;
  window.window_start = state.window_start;
  window.window_end = state.window_end;
  window.keys.reserve(state.keys.size());
  for (const auto& [id, key] : state.keys) {  // std::map: already (node, sensor) sorted
    tp::AggWindow::Key out;
    out.node = id.first;
    out.sensor = id.second;
    out.count = key.count;
    if (key.gaps) {
      for (std::size_t i = 0; i < metrics::Histogram::kBucketCount; ++i) {
        const std::uint64_t count = key.gaps->bucket_count_at(i);
        if (count > 0) out.gap_buckets.emplace_back(metrics::Histogram::bucket_bound(i), count);
      }
    }
    window.keys.push_back(std::move(out));
  }
  state.keys.clear();
  state.open = false;
  return window;
}

// ---- TCP fan-out thread ------------------------------------------------------

Status ConsumerGateway::start_tcp() {
  auto listener = net::TcpListener::listen(config_.consumer_port);
  if (!listener) return listener.status();
  listener_ = std::move(listener).value();
  Status nb = listener_.set_nonblocking(true);
  if (!nb) return nb;
  listen_port_ = listener_.port();

  auto wakeup = net::WakeupPipe::create();
  if (!wakeup) return wakeup.status();
  wakeup_ = std::move(wakeup).value();

  lane_ = std::make_unique<SpscQueue<sensors::Record>>(config_.lane_records);
  poller_ = net::make_poller(config_.poller);

  Status st = poller_->watch(listener_.fd(), [this](int, net::Readiness) { on_listener_ready(); });
  if (!st) return st;
  st = poller_->watch(wakeup_.fd(), [this](int, net::Readiness) { wakeup_.drain(); });
  if (!st) return st;

  tcp_running_.store(true, std::memory_order_release);
  fanout_thread_ = std::thread([this] { fanout_loop(); });
  return Status::ok();
}

void ConsumerGateway::fanout_loop() {
  TimeMicros closed_watermark = std::numeric_limits<TimeMicros>::min();
  while (!stop_.load(std::memory_order_acquire)) {
    auto polled = poller_->poll_once(config_.poll_timeout_us);
    if (!polled) {
      BRISK_LOG_ERROR << "gateway poll failed: " << polled.status().message();
      break;
    }

    pump_lane();

    const TimeMicros watermark = tcp_tick_watermark_.load(std::memory_order_acquire);
    if (watermark > closed_watermark) {
      close_due_tcp_windows(watermark);
      closed_watermark = watermark;
    }

    // Service every subscriber: queue → outbox → socket, overrun policy.
    // Collect fds first — service_sub may disconnect (erase from conns_).
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (const auto& [fd, sub] : conns_) fds.push_back(fd);
    for (int fd : fds) {
      auto it = conns_.find(fd);
      if (it != conns_.end()) service_sub(fd, *it->second);
    }

    if (drain_requested_.load(std::memory_order_acquire)) drain_tcp();
  }

  // Thread exit: drop every connection.
  for (auto& [fd, sub] : conns_) {
    poller_->unwatch(fd);
    if (sub->subscribed) {
      sub->counters->connected.store(false, std::memory_order_relaxed);
      tcp_subscriber_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  conns_.clear();
}

void ConsumerGateway::on_listener_ready() {
  for (;;) {
    auto accepted = listener_.accept();
    if (!accepted) return;  // would_block or transient error: next cycle
    net::TcpSocket socket = std::move(accepted).value();
    if (conns_.size() >= config_.max_subscribers) {
      BRISK_LOG_WARN << "gateway refusing consumer: at max_subscribers="
                     << config_.max_subscribers;
      continue;  // socket closes on scope exit
    }
    (void)socket.set_nonblocking(true);
    (void)socket.set_nodelay(true);
    const int fd = socket.fd();
    auto sub = std::make_unique<TcpSub>(std::move(socket), config_.outbox_bytes);
    tcp_accepted_.fetch_add(1, std::memory_order_relaxed);
    Status st = poller_->watch(
        fd, [this](int ready_fd, net::Readiness ready) { on_conn_ready(ready_fd, ready); });
    if (!st) continue;
    conns_.emplace(fd, std::move(sub));
  }
}

void ConsumerGateway::on_conn_ready(int fd, net::Readiness ready) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  TcpSub& sub = *it->second;

  if (any(ready & net::Readiness::readable)) {
    std::uint8_t chunk[kReadChunk];
    for (;;) {
      auto got = sub.socket.read_some(MutableByteSpan(chunk, sizeof(chunk)));
      if (!got) {
        if (got.status().code() == Errc::would_block) break;
        disconnect(fd, "read error");
        return;
      }
      if (got.value() == 0) {
        disconnect(fd, "peer closed");
        return;
      }
      sub.reader.feed(ByteSpan(chunk, got.value()));
      if (got.value() < sizeof(chunk)) break;
    }
    for (;;) {
      auto frame = sub.reader.next();
      if (!frame) {
        disconnect(fd, "malformed frame");
        return;
      }
      if (!frame.value().has_value()) break;
      handle_frame(fd, sub, frame.value()->view());
      if (conns_.find(fd) == conns_.end()) return;  // handler disconnected us
    }
  }

  if (any(ready & net::Readiness::writable)) {
    auto it2 = conns_.find(fd);
    if (it2 != conns_.end()) service_sub(fd, *it2->second);
  }
}

void ConsumerGateway::handle_frame(int fd, TcpSub& sub, ByteSpan payload) {
  xdr::Decoder dec(payload);
  auto type = tp::peek_type(dec);
  if (!type) {
    disconnect(fd, "unreadable frame");
    return;
  }
  switch (type.value()) {
    case tp::MsgType::subscribe: {
      auto req = tp::decode_subscribe(dec);
      if (!req) {
        disconnect(fd, "malformed subscribe");
        return;
      }
      handle_subscribe(fd, sub, req.value());
      return;
    }
    case tp::MsgType::unsubscribe: {
      auto req = tp::decode_unsubscribe(dec);
      if (!req || !sub.subscribed || req.value().subscription_id != sub.id) return;
      finish_tcp_subscription(sub);
      return;
    }
    default:
      disconnect(fd, "unexpected consumer frame");
      return;
  }
}

void ConsumerGateway::handle_subscribe(int fd, TcpSub& sub, const tp::SubscribeRequest& req) {
  tp::SubscribeAck ack;
  auto reject = [&](std::string why) {
    ack.accepted = false;
    ack.message = std::move(why);
  };

  auto filter = SubscriptionFilter::parse(req.filter);
  if (!filter) {
    reject(std::string("bad filter: ") + filter.status().message());
  } else if (req.kind != tp::SubscriptionKind::stream &&
             req.kind != tp::SubscriptionKind::aggregate) {
    reject("unknown subscription kind");
  } else {
    std::string name = req.name.empty() ? "tcp-" + std::to_string(next_sub_id_) : req.name;
    bool taken = false;
    {
      std::lock_guard<std::mutex> lk(stats_mutex_);
      for (const auto& entry : stats_entries_) {
        if (entry.name == name && entry.counters->connected.load(std::memory_order_relaxed)) {
          taken = true;
          break;
        }
      }
    }
    // Local names are also live stats entries, so one scan covers both.
    if (taken) {
      reject("subscriber name '" + name + "' in use");
    } else {
      if (sub.subscribed) finish_tcp_subscription(sub);  // re-subscribe replaces
      sub.subscribed = true;
      sub.id = next_sub_id_++;
      sub.name = std::move(name);
      sub.kind = req.kind;
      sub.filter = std::move(filter).value();
      sub.queue_cap = std::clamp<std::size_t>(
          req.queue_records > 0 ? req.queue_records : config_.queue_records, 1,
          config_.max_queue_records);
      sub.window_us =
          req.agg_window_us > 0 ? static_cast<TimeMicros>(req.agg_window_us) : config_.agg_window_us;
      sub.queue.clear();
      sub.agg = AggState{};
      sub.overrun_since = 0;
      sub.counters = std::make_shared<SubCounters>();
      add_stats_entry(sub.name, /*tcp=*/true, sub.counters);
      tcp_subscriber_count_.fetch_add(1, std::memory_order_relaxed);
      ack.accepted = true;
      ack.subscription_id = sub.id;
      BRISK_LOG_INFO << "gateway subscriber '" << sub.name << "' id=" << sub.id
                     << " kind=" << (sub.kind == tp::SubscriptionKind::stream ? "stream" : "agg")
                     << " filter='" << sub.filter.describe() << "' queue=" << sub.queue_cap;
    }
  }

  ByteBuffer frame;
  xdr::Encoder enc(frame);
  tp::put_type(tp::MsgType::subscribe_ack, enc);
  tp::encode_subscribe_ack(ack, enc);
  if (!sub.outbox.enqueue_frame(frame.view())) {
    disconnect(fd, "ack enqueue failed");
    return;
  }
  service_sub(fd, sub);
}

/// Ends the subscription but keeps the connection: seal the open agg
/// window, stop counting the subscriber as live.
void ConsumerGateway::finish_tcp_subscription(TcpSub& sub) {
  if (!sub.subscribed) return;
  if (sub.kind == tp::SubscriptionKind::aggregate && sub.agg.open) {
    enqueue_agg(sub, agg_seal(sub.agg));
  }
  sub.subscribed = false;
  sub.counters->connected.store(false, std::memory_order_relaxed);
  tcp_subscriber_count_.fetch_sub(1, std::memory_order_relaxed);
}

void ConsumerGateway::pump_lane() {
  sensors::Record record;
  while (lane_->try_pop(record)) route_record(record);
}

void ConsumerGateway::route_record(const sensors::Record& record) {
  std::shared_ptr<const ByteBuffer> data_frame;  // one encode, shared fan-out
  for (auto& [fd, sub_ptr] : conns_) {
    TcpSub& sub = *sub_ptr;
    if (!sub.subscribed) continue;
    if (!sub.filter.matches(record)) continue;
    sub.counters->matched.fetch_add(1, std::memory_order_relaxed);
    if (sub.kind == tp::SubscriptionKind::stream) {
      if (!data_frame) {
        data_frame = encode_data_frame(record);
        if (!data_frame) {
          BRISK_LOG_WARN << "gateway failed to encode record for fan-out";
          return;
        }
      }
      enqueue_frame(sub, data_frame);
    } else {
      agg_accumulate(sub.agg, sub.window_us, record,
                     [&](const tp::AggWindow& w) { enqueue_agg(sub, w); });
    }
  }
}

void ConsumerGateway::enqueue_frame(TcpSub& sub, std::shared_ptr<const ByteBuffer> frame) {
  if (sub.queue.size() >= sub.queue_cap) {
    // Drop-oldest: the freshest data survives a stall, and the reader can
    // tell from its dropped counter (0xFF01 stream) that a gap exists.
    sub.queue.pop_front();
    sub.counters->dropped.fetch_add(1, std::memory_order_relaxed);
    if (auto* flight = flight_.load(std::memory_order_acquire)) {
      flight->record(sensors::EventKind::queue_drop, sub.id, sub.queue_cap,
                     clk::SystemClock::instance().now());
    }
    if (sub.overrun_since == 0) sub.overrun_since = monotonic_micros();
  }
  sub.queue.push_back(std::move(frame));
  sub.counters->queued.store(sub.queue.size(), std::memory_order_relaxed);
}

void ConsumerGateway::enqueue_agg(TcpSub& sub, const tp::AggWindow& window) {
  auto frame = std::make_shared<const ByteBuffer>(encode_agg_frame(window));
  sub.counters->agg_windows.fetch_add(1, std::memory_order_relaxed);
  agg_windows_.fetch_add(1, std::memory_order_relaxed);
  enqueue_frame(sub, std::move(frame));
}

void ConsumerGateway::service_sub(int fd, TcpSub& sub) {
  while (!sub.queue.empty() && sub.outbox.pending_bytes() < kOutboxLowWater) {
    Status st = sub.outbox.enqueue_frame(sub.queue.front()->view());
    if (!st) break;  // outbox at cap; keep the frame queued
    sub.queue.pop_front();
    sub.counters->delivered.fetch_add(1, std::memory_order_relaxed);
  }
  sub.counters->queued.store(sub.queue.size(), std::memory_order_relaxed);

  Status st = sub.outbox.pump(sub.socket);
  if (!st) {
    disconnect(fd, "write error");
    return;
  }

  // Overrun policy: recovered means the queue fell back to half its cap;
  // stuck past the grace period means eviction.
  if (sub.overrun_since != 0) {
    if (sub.queue.size() * 2 <= sub.queue_cap) {
      sub.overrun_since = 0;
    } else if (monotonic_micros() - sub.overrun_since >= config_.overrun_grace_us) {
      tcp_evicted_.fetch_add(1, std::memory_order_relaxed);
      if (auto* flight = flight_.load(std::memory_order_acquire)) {
        flight->record(sensors::EventKind::subscriber_evicted, sub.id,
                       sub.counters->dropped.load(std::memory_order_relaxed),
                       clk::SystemClock::instance().now());
      }
      BRISK_LOG_WARN << "gateway evicting slow consumer '" << sub.name << "' (dropped "
                     << sub.counters->dropped.load(std::memory_order_relaxed) << " frames)";
      disconnect(fd, "slow consumer");
      return;
    }
  }
  update_write_interest(fd, sub);
}

void ConsumerGateway::update_write_interest(int fd, TcpSub& sub) {
  const bool want = !sub.outbox.empty() || !sub.queue.empty();
  if (want == sub.want_writable) return;
  sub.want_writable = want;
  const net::Readiness interest =
      want ? (net::Readiness::readable | net::Readiness::writable) : net::Readiness::readable;
  (void)poller_->watch(
      fd, interest, [this](int ready_fd, net::Readiness ready) { on_conn_ready(ready_fd, ready); });
}

void ConsumerGateway::disconnect(int fd, const char* why) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  TcpSub& sub = *it->second;
  if (sub.subscribed) {
    sub.subscribed = false;
    sub.counters->connected.store(false, std::memory_order_relaxed);
    tcp_subscriber_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  BRISK_LOG_INFO << "gateway dropping consumer"
                 << (sub.name.empty() ? "" : (" '" + sub.name + "'")) << ": " << why;
  (void)poller_->unwatch(fd);
  conns_.erase(it);
}

void ConsumerGateway::close_due_tcp_windows(TimeMicros watermark) {
  for (auto& [fd, sub_ptr] : conns_) {
    TcpSub& sub = *sub_ptr;
    if (!sub.subscribed || sub.kind != tp::SubscriptionKind::aggregate) continue;
    agg_close_due(sub.agg, watermark, [&](const tp::AggWindow& w) { enqueue_agg(sub, w); });
  }
}

/// Shutdown flush on the fan-out thread: lane → queues → sockets, bounded
/// by the drain timeout (the poll loop keeps servicing while we wait).
void ConsumerGateway::drain_tcp() {
  pump_lane();
  // Seal every open aggregation window so consumers see the tail.
  for (auto& [fd, sub_ptr] : conns_) {
    TcpSub& sub = *sub_ptr;
    if (sub.subscribed && sub.kind == tp::SubscriptionKind::aggregate && sub.agg.open) {
      enqueue_agg(sub, agg_seal(sub.agg));
    }
  }
  bool pending = false;
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, sub] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    service_sub(fd, *it->second);
    it = conns_.find(fd);
    if (it != conns_.end() && (!it->second->queue.empty() || !it->second->outbox.empty())) {
      pending = true;
    }
  }
  if (pending && !stop_.load(std::memory_order_acquire)) return;  // keep polling
  drain_requested_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(drain_mutex_);
    drain_done_ = true;
  }
  drain_cv_.notify_all();
}

// ---- observability -----------------------------------------------------------

void ConsumerGateway::add_stats_entry(std::string name, bool tcp,
                                      std::shared_ptr<SubCounters> counters) {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  // A re-subscribed name replaces its dead predecessor's entry, so the
  // per-subscriber metric series stays single-valued.
  for (auto& entry : stats_entries_) {
    if (entry.name == name) {
      entry.tcp = tcp;
      entry.counters = std::move(counters);
      return;
    }
  }
  stats_entries_.push_back(StatsEntry{std::move(name), tcp, std::move(counters)});
}

GatewayStats ConsumerGateway::stats() const {
  GatewayStats out;
  out.records_in = records_in_.load(std::memory_order_relaxed);
  out.lane_drops = lane_drops_.load(std::memory_order_relaxed);
  out.tcp_accepted = tcp_accepted_.load(std::memory_order_relaxed);
  out.tcp_subscribers = tcp_subscriber_count_.load(std::memory_order_relaxed);
  out.tcp_evicted = tcp_evicted_.load(std::memory_order_relaxed);
  out.agg_windows = agg_windows_.load(std::memory_order_relaxed);
  return out;
}

std::vector<SubscriberStats> ConsumerGateway::subscriber_stats() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  std::vector<SubscriberStats> out;
  out.reserve(stats_entries_.size());
  for (const auto& entry : stats_entries_) {
    SubscriberStats s;
    s.name = entry.name;
    s.tcp = entry.tcp;
    s.connected = entry.counters->connected.load(std::memory_order_relaxed);
    s.matched = entry.counters->matched.load(std::memory_order_relaxed);
    s.delivered = entry.counters->delivered.load(std::memory_order_relaxed);
    s.dropped = entry.counters->dropped.load(std::memory_order_relaxed);
    s.queued = entry.counters->queued.load(std::memory_order_relaxed);
    s.agg_windows = entry.counters->agg_windows.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

void ConsumerGateway::register_metrics(metrics::MetricsRegistry& registry) {
  registry.add_collector([this](metrics::SnapshotBuilder& builder) {
    const GatewayStats totals = stats();
    builder.counter("ism.gateway.records_in", totals.records_in);
    builder.counter("ism.gateway.lane_drops", totals.lane_drops);
    builder.counter("ism.gateway.tcp_accepted", totals.tcp_accepted);
    builder.gauge("ism.gateway.tcp_subscribers", totals.tcp_subscribers);
    builder.counter("ism.gateway.tcp_evicted", totals.tcp_evicted);
    builder.counter("ism.gateway.agg_windows", totals.agg_windows);
    for (const SubscriberStats& s : subscriber_stats()) {
      const std::string base = "ism.gateway.sub." + s.name;
      builder.counter(base + ".matched", s.matched);
      builder.counter(base + ".delivered", s.delivered);
      builder.counter(base + ".dropped", s.dropped);
      builder.gauge(base + ".queued", s.queued);
    }
  });
}

}  // namespace brisk::ism
