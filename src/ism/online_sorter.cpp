#include "ism/online_sorter.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace brisk::ism {

OnlineSorter::OnlineSorter(const SorterConfig& config, clk::Clock& clock, EmitFn emit)
    : config_(config),
      clock_(clock),
      emit_(std::move(emit)),
      frame_us_(static_cast<double>(config.initial_frame_us)),
      last_decay_at_(clock.now()) {}

Status OnlineSorter::push(sensors::Record record) {
  auto it = queues_.find(record.node);
  if (it == queues_.end()) {
    auto queue = std::make_unique<EventQueue>(record.node);
    EventQueue* raw = queue.get();
    queues_.emplace(record.node, std::move(queue));
    Status st = heap_.add_queue(raw);
    if (!st) return st;
    it = queues_.find(record.node);
  }
  if (heap_.pending() >= config_.max_pending) {
    if (config_.overflow == OverflowPolicy::drop_newest) {
      ++stats_.overflow_drops;
      return Status::ok();
    }
    handle_overflow();
  }
  if (emitted_any_ && record.timestamp < last_emitted_ts_) {
    // Already behind the emitted frontier: no delay window can reorder this
    // record any more, so it is a late arrival the current T failed to
    // absorb (it still gets emitted, just out of order).
    ++stats_.late_drops;
  }
  const NodeId node = record.node;
  it->second->push(std::move(record), clock_.now());
  heap_.notify_pushed(node);
  ++stats_.pushed;
  return Status::ok();
}

void OnlineSorter::handle_overflow() {
  auto popped = heap_.pop_min();
  if (!popped) return;
  if (config_.overflow == OverflowPolicy::emit_early) {
    ++stats_.overflow_emits;
    emit(std::move(popped).value(), true);
  } else {  // drop_oldest
    ++stats_.overflow_drops;
  }
}

void OnlineSorter::emit(QueuedRecord queued, bool respect_order_check) {
  sensors::Record& record = queued.record;
  if (respect_order_check) {
    if (emitted_any_ && record.timestamp < last_emitted_ts_) {
      // Two successive records extracted out of order: raise T to the
      // observed lateness.
      const TimeMicros lateness = last_emitted_ts_ - record.timestamp;
      ++stats_.out_of_order_emissions;
      disorder_.record(static_cast<std::uint64_t>(lateness));
      if (lateness > stats_.max_lateness_us) stats_.max_lateness_us = lateness;
      if (config_.adaptive && static_cast<double>(lateness) > frame_us_) {
        frame_us_ = static_cast<double>(
            lateness < config_.max_frame_us ? lateness : config_.max_frame_us);
        ++stats_.frame_raises;
      }
    }
    if (!emitted_any_ || record.timestamp > last_emitted_ts_) {
      last_emitted_ts_ = record.timestamp;
    }
    emitted_any_ = true;
  }
  // Out-of-band emissions (session-expiry drain) leave last_emitted_ts_ and
  // T untouched: a dead node's leftovers must not distort the adaptive
  // window the live nodes are sorted under.
  ++stats_.emitted;
  const TimeMicros delay = clock_.now() - record.timestamp;
  if (delay > 0) stats_.total_delay_us += static_cast<std::uint64_t>(delay);
  emit_(std::move(record));
}

void OnlineSorter::decay_frame(TimeMicros now) {
  const TimeMicros dt = now - last_decay_at_;
  last_decay_at_ = now;
  if (!config_.adaptive || dt <= 0 || config_.decay_half_life_s <= 0) return;
  const double half_lives = static_cast<double>(dt) / (config_.decay_half_life_s * 1e6);
  const double floor = static_cast<double>(config_.min_frame_us);
  frame_us_ = floor + (frame_us_ - floor) * std::exp2(-half_lives);
  if (frame_us_ < floor) frame_us_ = floor;
}

void OnlineSorter::service() {
  const TimeMicros now = clock_.now();
  while (heap_.has_min() &&
         now >= heap_.min_timestamp() + static_cast<TimeMicros>(frame_us_)) {
    auto popped = heap_.pop_min();
    if (!popped) break;
    emit(std::move(popped).value(), true);
  }
  decay_frame(now);
}

void OnlineSorter::flush_all() {
  while (heap_.has_min()) {
    auto popped = heap_.pop_min();
    if (!popped) break;
    emit(std::move(popped).value(), true);
  }
}

std::size_t OnlineSorter::remove_node(NodeId node) {
  auto it = queues_.find(node);
  if (it == queues_.end()) return 0;
  std::size_t drained = 0;
  EventQueue& queue = *it->second;
  // The heap must stop referencing the queue before we drain it: pop_min
  // re-peeks queue heads when fixing itself up.
  (void)heap_.remove_queue(node);
  while (!queue.empty()) {
    emit(queue.pop(), /*respect_order_check=*/false);
    ++drained;
  }
  queues_.erase(it);
  return drained;
}

TimeMicros OnlineSorter::next_due_in() {
  if (!heap_.has_min()) return -1;
  return heap_.min_timestamp() + static_cast<TimeMicros>(frame_us_) - clock_.now();
}

}  // namespace brisk::ism
