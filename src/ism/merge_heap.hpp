// Timestamp-ordered merge across the per-EXS queues.
//
// "For dynamic merging/on-line sorting and extracting instrumentation data
// records from multiple queues, the ISM uses a heap having one entry for
// each queue." The heap holds at most one entry per queue — the queue
// head's timestamp — so extracting the global minimum is O(log n_queues)
// regardless of how many records are pending.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ism/event_queue.hpp"

namespace brisk::ism {

class MergeHeap {
 public:
  /// Registers a queue (one per connected EXS). The queue must outlive the
  /// heap. Re-adding a node id is an error.
  Status add_queue(EventQueue* queue);
  Status remove_queue(NodeId node);

  /// Re-establishes the heap entry for `node` after records were pushed to
  /// its queue (cheap no-op if already present).
  void notify_pushed(NodeId node);

  /// Timestamp of the globally smallest queue-head record, if any.
  [[nodiscard]] bool has_min() const noexcept { return !heap_.empty(); }
  [[nodiscard]] TimeMicros min_timestamp() const;

  /// Pops the globally smallest record and fixes up the heap.
  Result<QueuedRecord> pop_min();

  [[nodiscard]] std::size_t queue_count() const noexcept { return queues_.size(); }
  /// Total records pending across all queues.
  [[nodiscard]] std::size_t pending() const noexcept;

 private:
  struct Entry {
    TimeMicros timestamp;
    EventQueue* queue;
    bool operator>(const Entry& other) const noexcept {
      if (timestamp != other.timestamp) return timestamp > other.timestamp;
      return queue->node() > other.queue->node();  // deterministic tie-break
    }
  };

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void heap_push(Entry entry);
  Entry heap_pop();

  std::map<NodeId, EventQueue*> queues_;
  std::map<NodeId, bool> in_heap_;
  std::vector<Entry> heap_;  // binary min-heap (operator> above)
};

}  // namespace brisk::ism
