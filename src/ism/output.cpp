#include "ism/output.hpp"

#include <cstring>

#include "common/logging.hpp"

namespace brisk::ism {

Result<ByteBuffer> encode_output_record(const sensors::Record& record) {
  auto native = sensors::encode_native(record);
  if (!native) return native.status();
  ByteBuffer out;
  std::uint8_t node_prefix[4];
  std::memcpy(node_prefix, &record.node, 4);
  out.append(node_prefix, 4);
  out.append(native.value().view());
  return out;
}

Result<sensors::Record> decode_output_record(ByteSpan bytes) {
  if (bytes.size() < 4) return Status(Errc::truncated, "node prefix");
  NodeId node = 0;
  std::memcpy(&node, bytes.data(), 4);
  return sensors::decode_native(bytes.subspan(4), node);
}

Status ShmSink::accept(const sensors::Record& record) {
  auto encoded = encode_output_record(record);
  if (!encoded) return encoded.status();
  if (!ring_.try_push(encoded.value().view())) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return Status(Errc::buffer_full, "output ring full");
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  return Status::ok();
}

Status SinkRegistry::add(std::shared_ptr<Sink> sink) {
  if (!sink) return Status(Errc::invalid_argument, "null sink");
  std::string name = sink->name();
  return add(std::move(name), std::move(sink));
}

Status SinkRegistry::add(std::string name, std::shared_ptr<Sink> sink) {
  if (!sink) return Status(Errc::invalid_argument, "null sink");
  if (name.empty()) return Status(Errc::invalid_argument, "empty sink name");
  std::lock_guard<std::mutex> lk(mutation_mutex_);
  const auto current = snapshot();
  for (const auto& entry : *current) {
    if (entry.name == name) {
      return Status(Errc::already_exists, "sink '" + name + "' already registered");
    }
  }
  auto next = std::make_shared<EntryList>(*current);
  next->push_back(Entry{std::move(name), std::move(sink)});
  std::atomic_store_explicit(&sinks_, std::shared_ptr<const EntryList>(std::move(next)),
                             std::memory_order_release);
  return Status::ok();
}

bool SinkRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lk(mutation_mutex_);
  const auto current = snapshot();
  auto next = std::make_shared<EntryList>();
  next->reserve(current->size());
  bool removed = false;
  for (const auto& entry : *current) {
    if (!removed && entry.name == name) {
      removed = true;
      continue;
    }
    next->push_back(entry);
  }
  if (!removed) return false;
  std::atomic_store_explicit(&sinks_, std::shared_ptr<const EntryList>(std::move(next)),
                             std::memory_order_release);
  return true;
}

std::shared_ptr<Sink> SinkRegistry::find(const std::string& name) const {
  const auto current = snapshot();
  for (const auto& entry : *current) {
    if (entry.name == name) return entry.sink;
  }
  return nullptr;
}

Status SinkRegistry::accept(const sensors::Record& record) {
  const auto current = snapshot();
  Status first_error = Status::ok();
  for (const auto& entry : *current) {
    Status st = entry.sink->accept(record);
    if (!st && first_error.is_ok()) first_error = st;
  }
  return first_error;
}

Status SinkRegistry::flush() {
  const auto current = snapshot();
  Status first_error = Status::ok();
  for (const auto& entry : *current) {
    Status st = entry.sink->flush();
    if (!st && first_error.is_ok()) first_error = st;
  }
  return first_error;
}

void SinkRegistry::tick(TimeMicros watermark) {
  const auto current = snapshot();
  for (const auto& entry : *current) entry.sink->tick(watermark);
}

Status SinkRegistry::drain() {
  const auto current = snapshot();
  Status first_error = Status::ok();
  for (const auto& entry : *current) {
    Status st = entry.sink->drain();
    if (!st && first_error.is_ok()) first_error = st;
  }
  return first_error;
}

std::size_t SinkRegistry::sink_count() const { return snapshot()->size(); }

std::vector<std::string> SinkRegistry::names() const {
  const auto current = snapshot();
  std::vector<std::string> out;
  out.reserve(current->size());
  for (const auto& entry : *current) out.push_back(entry.name);
  return out;
}

}  // namespace brisk::ism
