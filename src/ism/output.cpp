#include "ism/output.hpp"

#include <cstring>

#include "common/logging.hpp"

namespace brisk::ism {

Result<ByteBuffer> encode_output_record(const sensors::Record& record) {
  auto native = sensors::encode_native(record);
  if (!native) return native.status();
  ByteBuffer out;
  std::uint8_t node_prefix[4];
  std::memcpy(node_prefix, &record.node, 4);
  out.append(node_prefix, 4);
  out.append(native.value().view());
  return out;
}

Result<sensors::Record> decode_output_record(ByteSpan bytes) {
  if (bytes.size() < 4) return Status(Errc::truncated, "node prefix");
  NodeId node = 0;
  std::memcpy(&node, bytes.data(), 4);
  return sensors::decode_native(bytes.subspan(4), node);
}

Status ShmSink::accept(const sensors::Record& record) {
  auto encoded = encode_output_record(record);
  if (!encoded) return encoded.status();
  if (!ring_.try_push(encoded.value().view())) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return Status(Errc::buffer_full, "output ring full");
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  return Status::ok();
}

Status SinkRegistry::add(std::shared_ptr<Sink> sink) {
  if (!sink) return Status(Errc::invalid_argument, "null sink");
  std::string name = sink->name();
  return add(std::move(name), std::move(sink));
}

Status SinkRegistry::add(std::string name, std::shared_ptr<Sink> sink) {
  if (!sink) return Status(Errc::invalid_argument, "null sink");
  if (name.empty()) return Status(Errc::invalid_argument, "empty sink name");
  for (const auto& entry : sinks_) {
    if (entry.name == name) {
      return Status(Errc::already_exists, "sink '" + name + "' already registered");
    }
  }
  sinks_.push_back(Entry{std::move(name), std::move(sink)});
  return Status::ok();
}

bool SinkRegistry::remove(const std::string& name) {
  for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
    if (it->name == name) {
      sinks_.erase(it);
      return true;
    }
  }
  return false;
}

std::shared_ptr<Sink> SinkRegistry::find(const std::string& name) const {
  for (const auto& entry : sinks_) {
    if (entry.name == name) return entry.sink;
  }
  return nullptr;
}

Status SinkRegistry::accept(const sensors::Record& record) {
  Status first_error = Status::ok();
  for (auto& entry : sinks_) {
    Status st = entry.sink->accept(record);
    if (!st && first_error.is_ok()) first_error = st;
  }
  return first_error;
}

Status SinkRegistry::flush() {
  Status first_error = Status::ok();
  for (auto& entry : sinks_) {
    Status st = entry.sink->flush();
    if (!st && first_error.is_ok()) first_error = st;
  }
  return first_error;
}

std::vector<std::string> SinkRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(sinks_.size());
  for (const auto& entry : sinks_) out.push_back(entry.name);
  return out;
}

}  // namespace brisk::ism
