#include "ism/output.hpp"

#include <cstring>

#include "common/logging.hpp"

namespace brisk::ism {

Result<ByteBuffer> encode_output_record(const sensors::Record& record) {
  auto native = sensors::encode_native(record);
  if (!native) return native.status();
  ByteBuffer out;
  std::uint8_t node_prefix[4];
  std::memcpy(node_prefix, &record.node, 4);
  out.append(node_prefix, 4);
  out.append(native.value().view());
  return out;
}

Result<sensors::Record> decode_output_record(ByteSpan bytes) {
  if (bytes.size() < 4) return Status(Errc::truncated, "node prefix");
  NodeId node = 0;
  std::memcpy(&node, bytes.data(), 4);
  return sensors::decode_native(bytes.subspan(4), node);
}

Status ShmOutputSink::deliver(const sensors::Record& record) {
  auto encoded = encode_output_record(record);
  if (!encoded) return encoded.status();
  if (!ring_.try_push(encoded.value().view())) {
    ++dropped_;
    return Status(Errc::buffer_full, "output ring full");
  }
  ++delivered_;
  return Status::ok();
}

Status FanOut::deliver(const sensors::Record& record) {
  Status first_error = Status::ok();
  for (auto& sink : sinks_) {
    Status st = sink->deliver(record);
    if (!st && first_error.is_ok()) first_error = st;
  }
  return first_error;
}

Status FanOut::flush() {
  Status first_error = Status::ok();
  for (auto& sink : sinks_) {
    Status st = sink->flush();
    if (!st && first_error.is_ok()) first_error = st;
  }
  return first_error;
}

}  // namespace brisk::ism
