// Per-EXS event queues. "When the ISM receives a data batch from an
// external sensor, it stores it in the corresponding queue; the in-order
// arrival of these batches is guaranteed by the socket stream protocol."
#pragma once

#include <cstdint>
#include <deque>

#include "sensors/record.hpp"

namespace brisk::ism {

/// A record waiting in the ISM with its arrival bookkeeping.
struct QueuedRecord {
  sensors::Record record;
  TimeMicros arrived_at = 0;  // ISM clock when the batch was decoded
};

class EventQueue {
 public:
  explicit EventQueue(NodeId node) : node_(node) {}

  void push(sensors::Record record, TimeMicros arrived_at) {
    queue_.push_back({std::move(record), arrived_at});
    ++total_received_;
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] const QueuedRecord& front() const { return queue_.front(); }

  QueuedRecord pop() {
    QueuedRecord out = std::move(queue_.front());
    queue_.pop_front();
    return out;
  }

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::uint64_t total_received() const noexcept { return total_received_; }

  /// Cumulative ring drops the EXS has reported for this node.
  void set_reported_drops(std::uint64_t drops) noexcept { reported_drops_ = drops; }
  [[nodiscard]] std::uint64_t reported_drops() const noexcept { return reported_drops_; }

  /// Batch continuity check: returns false when `batch_seq` is not the
  /// expected next value (a gap means frames were lost or reordered, which
  /// the TCP stream should make impossible).
  bool accept_batch_seq(std::uint32_t batch_seq) noexcept {
    const bool ok = batch_seq == next_batch_seq_;
    next_batch_seq_ = batch_seq + 1;
    return ok;
  }

 private:
  NodeId node_;
  std::deque<QueuedRecord> queue_;
  std::uint64_t total_received_ = 0;
  std::uint64_t reported_drops_ = 0;
  std::uint32_t next_batch_seq_ = 0;
};

}  // namespace brisk::ism
