#include "ism/ism.hpp"

#include <poll.h>
#include <sys/select.h>
#include <sys/socket.h>

#include <string>

#include "common/logging.hpp"
#include "common/time_util.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::ism {

Ism::Ism(const IsmConfig& config, clk::Clock& clock, std::shared_ptr<Sink> output,
         net::TcpListener listener)
    : config_(config),
      clock_(clock),
      output_(std::move(output)),
      listener_(std::move(listener)),
      loop_(net::make_poller(config.poller)),
      sync_transport_(*this) {
  PipelineConfig pipeline_config;
  pipeline_config.shards = config_.sorter_shards;
  pipeline_config.shard_queue_records = config_.shard_queue_records;
  pipeline_config.poll_timeout_us = config_.select_timeout_us;
  pipeline_config.sorter = config_.sorter;
  pipeline_config.cre = config_.cre;
  pipeline_ = std::make_unique<OrderingPipeline>(
      pipeline_config, clock_,
      [this](const sensors::Record& record) {
        Status st = output_->accept(record);
        if (!st && st.code() != Errc::buffer_full) {
          BRISK_LOG_WARN << "output sink failed: " << st.to_string();
        }
      },
      [this] { (void)output_->flush(); },
      // May fire on the merger thread; the sync service lives on the
      // ordering thread, so just raise a flag idle_work() consumes.
      [this] { extra_sync_requested_.store(true, std::memory_order_release); });
  if (config_.enable_sync) {
    sync_service_ = std::make_unique<clk::SyncService>(config_.sync, sync_transport_, clock_);
  }
}

Ism::~Ism() {
  // Readers must die before connections_: they hold raw fds into it.
  for (auto& reader : readers_) reader->stop_and_join();
}

Result<std::unique_ptr<Ism>> Ism::start(const IsmConfig& config, clk::Clock& clock,
                                        std::shared_ptr<Sink> output) {
  if (!output) return Status(Errc::invalid_argument, "null output sink");
  auto listener = net::TcpListener::listen(config.port);
  if (!listener) return listener.status();
  Status st = listener.value().set_nonblocking(true);
  if (!st) return st;

  auto ism = std::unique_ptr<Ism>(
      new Ism(config, clock, std::move(output), std::move(listener).value()));
  Ism* raw = ism.get();
  st = ism->loop_->watch(ism->listener_.fd(), [raw](int, net::Readiness) {
    raw->on_listener_readable();
  });
  if (!st) return st;
  ism->loop_->set_idle([raw] { raw->idle_work(); });

  for (std::size_t i = 0; i < config.reader_threads; ++i) {
    ReaderConfig reader_config;
    reader_config.poller = config.poller;
    reader_config.lane_depth = config.ingest_queue_frames;
    reader_config.poll_timeout_us = config.select_timeout_us;
    auto reader = ReaderThread::start(reader_config);
    if (!reader) return reader.status();
    // A reader's wakeup means events are pending on some lane; drain them
    // all — lanes are cheap to check and this keeps the wiring simple.
    st = ism->loop_->watch(reader.value()->wakeup_fd(),
                           [raw, r = reader.value().get()](int, net::Readiness) {
                             r->drain_wakeup();
                             raw->drain_ingest();
                           });
    if (!st) return st;
    ism->readers_.push_back(std::move(reader).value());
  }
  ism->reader_loads_.assign(ism->readers_.size(), 0);
  return ism;
}

void Ism::on_listener_readable() {
  for (;;) {
    auto client = listener_.accept();
    if (!client) {
      if (client.status().code() != Errc::would_block) {
        BRISK_LOG_WARN << "accept failed: " << client.status().to_string();
      }
      return;
    }
    net::TcpSocket socket = std::move(client).value();
    (void)socket.set_nodelay(true);
    if (!socket.set_nonblocking(true)) continue;
    const int fd = socket.fd();
    Connection conn;
    conn.socket = std::move(socket);
    conn.last_rx_us = monotonic_micros();
    if (threaded()) {
      conn.lane = std::make_shared<IngestLane>(config_.ingest_queue_frames);
      conn.reader_index = least_loaded_reader(reader_loads_);
    }
    auto [it, inserted] = connections_.emplace(fd, std::move(conn));
    if (!inserted) continue;
    if (threaded()) {
      ++reader_loads_[it->second.reader_index];
      readers_[it->second.reader_index]->add_connection(fd, it->second.lane);
    } else {
      Status st = loop_->watch(fd, [this](int ready_fd, net::Readiness) {
        on_connection_readable(ready_fd);
      });
      if (!st) {
        connections_.erase(fd);
        continue;
      }
    }
    ++stats_.connections_accepted;
    stats_.active_connections = connections_.size();
  }
}

void Ism::on_connection_readable(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;

  std::uint8_t chunk[64 * 1024];
  for (;;) {
    auto n = conn.socket.read_some(MutableByteSpan{chunk, sizeof chunk});
    if (!n) {
      if (n.status().code() == Errc::would_block) break;
      close_connection(fd);
      return;
    }
    if (n.value() == 0) {  // orderly close
      close_connection(fd);
      return;
    }
    conn.last_rx_us = monotonic_micros();
    stats_.bytes_received += n.value();
    conn.reader.feed(ByteSpan{chunk, n.value()});
    for (;;) {
      auto frame = conn.reader.next();
      if (!frame) {
        ++stats_.protocol_errors;
        close_connection(fd);
        return;
      }
      if (!frame.value().has_value()) break;
      Status st = dispatch_frame(conn, frame.value()->view());
      if (!st) {
        if (st.code() != Errc::closed) {
          ++stats_.protocol_errors;
          BRISK_LOG_WARN << "frame dispatch failed: " << st.to_string();
        }
        close_connection(fd);
        return;
      }
    }
  }
}

// ---- threaded ingest --------------------------------------------------------

void Ism::drain_ingest() {
  if (!threaded()) return;
  // Snapshot fds: processing an event may erase connections.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) {
    if (conn.lane) fds.push_back(fd);
  }
  for (int fd : fds) {
    for (;;) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) break;
      IngestEvent event;
      if (!it->second.lane->queue.try_pop(event)) {
        // Lane empty. If the reader stalled on it, there is room again now;
        // let it continue reading the socket.
        if (it->second.lane->stalled.load(std::memory_order_acquire) &&
            !it->second.reader_done) {
          ++stats_.ingest_stalls;
          readers_[it->second.reader_index]->resume(fd);
        }
        break;
      }
      process_ingest_event(fd, std::move(event));
    }
  }
}

void Ism::process_ingest_event(int fd, IngestEvent event) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  conn.last_rx_us = monotonic_micros();
  stats_.bytes_received += event.wire_bytes;

  switch (event.kind) {
    case IngestEvent::Kind::closed:
      conn.reader_done = true;
      // An ok status is an orderly EOF and io_error a peer reset — only
      // frame-layer garbage (oversized frame, undecodable batch) counts
      // as a protocol violation.
      if (!event.error && event.error.code() != Errc::io_error && !conn.closing) {
        ++stats_.protocol_errors;
        BRISK_LOG_WARN << "ingest error on fd " << fd << ": " << event.error.to_string();
      }
      close_connection(fd);
      return;
    case IngestEvent::Kind::batch: {
      if (!conn.hello_seen) {
        ++stats_.protocol_errors;
        close_connection(fd);
        return;
      }
      handle_batch(conn, std::move(event.batch));
      return;
    }
    case IngestEvent::Kind::frame: {
      Status st = dispatch_frame(conn, event.payload.view());
      if (!st) {
        if (st.code() != Errc::closed) {
          ++stats_.protocol_errors;
          BRISK_LOG_WARN << "frame dispatch failed: " << st.to_string();
        }
        close_connection(fd);
      }
      return;
    }
  }
}

Status Ism::dispatch_frame(Connection& conn, ByteSpan payload) {
  xdr::Decoder decoder(payload);
  auto type = tp::peek_type(decoder);
  if (!type) return type.status();
  switch (type.value()) {
    case tp::MsgType::hello: {
      auto hello = tp::decode_hello(decoder);
      if (!hello) return hello.status();
      if (hello.value().version != tp::kProtocolVersion) {
        return Status(Errc::unsupported, "protocol version mismatch");
      }
      if (nodes_.count(hello.value().node) != 0) {
        // A live connection already owns this node id. Dead-but-unclosed
        // predecessors are reaped by the idle timeout, after which the
        // newcomer's reconnect loop gets through.
        return Status(Errc::already_exists, "node id already connected");
      }
      conn.node = hello.value().node;
      conn.hello_seen = true;
      if (config_.flow_control_rate_per_sec > 0.0) {
        conn.flow_control = std::make_unique<TokenBucket>(config_.flow_control_rate_per_sec,
                                                          config_.flow_control_burst);
      }
      nodes_[conn.node] = conn.socket.fd();

      auto [sit, fresh] = sessions_.try_emplace(conn.node);
      NodeSession& session = sit->second;
      if (fresh || session.incarnation != hello.value().incarnation) {
        // New node, or the EXS process restarted: its batch_seq starts over
        // at zero, so the cursor must too (the quarantined queue of a
        // previous incarnation, if any, stays and drains normally).
        session = NodeSession{};
        session.incarnation = hello.value().incarnation;
        BRISK_LOG_INFO << "node " << conn.node << " connected (incarnation "
                       << hello.value().incarnation << ")";
      } else {
        ++stats_.rejoins;
        BRISK_LOG_INFO << "node " << conn.node << " rejoined at batch seq "
                       << session.next_batch_seq;
      }
      session.connected = true;
      session.disconnected_at = 0;
      session.hole_since = 0;
      // The HELLO_ACK cursor tells the EXS where to resume; it releases the
      // EXS's send gate, so it must go out before any BATCH_ACK.
      return send_ack(conn, tp::MsgType::hello_ack);
    }
    case tp::MsgType::data_batch: {
      if (!conn.hello_seen) return Status(Errc::malformed, "batch before hello");
      auto batch = tp::decode_batch(decoder);
      if (!batch) return batch.status();
      handle_batch(conn, std::move(batch).value());
      return Status::ok();
    }
    case tp::MsgType::time_resp: {
      auto resp = tp::decode_time_resp(decoder);
      if (!resp) return resp.status();
      if (pending_poll_request_ != 0 && resp.value().request_id == pending_poll_request_) {
        pending_poll_answered_ = true;
        pending_poll_slave_time_ = resp.value().slave_time;
      } else {
        BRISK_LOG_DEBUG << "stale time_resp " << resp.value().request_id;
      }
      return Status::ok();
    }
    case tp::MsgType::heartbeat:
      ++stats_.heartbeats_received;  // reception already refreshed last_rx_us
      return Status::ok();
    case tp::MsgType::bye:
      conn.saw_bye = true;
      return Status(Errc::closed, "EXS said bye");
    default:
      return Status(Errc::malformed, "unexpected message type at ISM");
  }
}

bool Ism::admit_batch_seq(const Connection& conn, NodeSession& session, std::uint32_t seq) {
  if (!resilient()) {
    // v1-style accounting: every discontinuity is an immediately declared
    // gap and the cursor follows the sender.
    if (seq != session.next_batch_seq) {
      ++stats_.batch_seq_gaps;
      BRISK_LOG_WARN << "node " << conn.node << " batch seq gap: expected "
                     << session.next_batch_seq << ", got " << seq;
    }
    session.next_batch_seq = seq + 1;
    return true;
  }
  if (seq == session.next_batch_seq) {
    session.next_batch_seq = seq + 1;
    session.hole_since = 0;
    return true;
  }
  if (seq < session.next_batch_seq) {
    // Already applied — a replay after a reconnect, or a duplicated frame.
    ++stats_.duplicate_batches_dropped;
    return false;
  }
  // seq > cursor: a batch went missing in flight. Go-back-N: drop everything
  // above the hole and let the stuck ack cursor trigger the EXS's resend,
  // which starts at the missing batch.
  const TimeMicros now = monotonic_micros();
  if (session.hole_since == 0) {
    session.hole_since = now;
    session.lowest_pending_seq = seq;
  } else if (seq < session.lowest_pending_seq) {
    session.lowest_pending_seq = seq;
  }
  ++stats_.out_of_order_batches_dropped;
  if (config_.gap_skip_timeout_us > 0 &&
      now - session.hole_since >= config_.gap_skip_timeout_us) {
    // The resend never came: the EXS evicted the missing batches from its
    // replay buffer (declared loss). Jump the cursor to the lowest batch
    // still on offer so the stream can make progress again.
    ++stats_.batch_seq_gaps;
    BRISK_LOG_WARN << "node " << conn.node << " declaring batch gap: "
                   << session.next_batch_seq << ".." << session.lowest_pending_seq - 1;
    session.next_batch_seq = session.lowest_pending_seq;
    session.hole_since = 0;
    if (seq == session.next_batch_seq) {
      session.next_batch_seq = seq + 1;
      return true;
    }
  }
  return false;
}

void Ism::handle_batch(Connection& conn, tp::Batch batch) {
  ++stats_.batches_received;
  NodeSession& session = sessions_[conn.node];
  if (!admit_batch_seq(conn, session, batch.header.batch_seq)) return;
  stats_.records_received += batch.records.size();
  if (batch.header.ring_dropped_total >= session.ring_dropped_total) {
    stats_.ring_drops_reported += batch.header.ring_dropped_total - session.ring_dropped_total;
    session.ring_dropped_total = batch.header.ring_dropped_total;
  }
  for (sensors::Record& record : batch.records) {
    if (conn.flow_control && !conn.flow_control->admit(clock_.now())) {
      ++stats_.flow_control_drops;
      continue;
    }
    record.node = conn.node;
    route_record(std::move(record));
  }
}

void Ism::route_record(sensors::Record record) {
  Status st = pipeline_->submit(std::move(record));
  if (!st) {
    BRISK_LOG_WARN << "pipeline submit failed: " << st.to_string();
  }
}

void Ism::idle_work() {
  drain_ingest();
  pipeline_->service();
  session_sweep();
  if (extra_sync_requested_.exchange(false, std::memory_order_acq_rel) && sync_service_) {
    sync_service_->request_extra_round();
  }
  if (sync_service_) sync_service_->maybe_run_round();
  // Sharded removals drain asynchronously; keep the counter in step with
  // what has actually been drained so far (exact already in inline mode).
  stats_.records_drained_on_expiry = pipeline_->stats().oob_records;
  // Sharded mode flushes from the merger thread (the pipeline's flush
  // hook); flushing here too would race it.
  if (!pipeline_->threaded()) (void)output_->flush();
  maybe_log_stats();
}

void Ism::maybe_log_stats() {
  if (config_.stats_interval_us <= 0) return;
  const TimeMicros now = monotonic_micros();
  if (last_stats_log_us_ == 0) {  // baseline; first line after one interval
    last_stats_log_us_ = now;
    return;
  }
  if (now - last_stats_log_us_ < config_.stats_interval_us) return;
  last_stats_log_us_ = now;
  std::string depths;
  for (std::size_t depth : pipeline_->shard_depths()) {
    if (!depths.empty()) depths += "/";
    depths += std::to_string(depth);
  }
  BRISK_LOG_INFO << "stats: sessions=" << sessions_.size()
                 << " conns=" << connections_.size()
                 << " batches=" << stats_.batches_received
                 << " records=" << stats_.records_received
                 << " dup_drops=" << stats_.duplicate_batches_dropped
                 << " replays=" << stats_.rejoins
                 << " gaps=" << stats_.batch_seq_gaps
                 << " drained=" << stats_.records_drained_on_expiry
                 << " sorter_depth=" << depths;
}

Status Ism::send_frame(Connection& conn, ByteSpan payload) {
  return fault_.write_frame(conn.socket, payload);
}

Status Ism::send_ack(Connection& conn, tp::MsgType type) {
  NodeSession& session = sessions_[conn.node];
  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(type, enc);
  if (type == tp::MsgType::hello_ack) {
    tp::encode_hello_ack({session.incarnation, session.next_batch_seq}, enc);
  } else {
    tp::encode_batch_ack({session.next_batch_seq}, enc);
  }
  conn.last_ack_sent_us = monotonic_micros();
  ++stats_.acks_sent;
  return send_frame(conn, out.view());
}

void Ism::session_sweep() {
  const TimeMicros now = monotonic_micros();

  // Reap peers that have been silent past the idle timeout (an EXS that
  // heartbeats can never trip this while alive).
  if (config_.peer_idle_timeout_us > 0) {
    std::vector<int> idle_fds;
    for (const auto& [fd, conn] : connections_) {
      if (conn.closing) continue;  // already being torn down
      if (now - conn.last_rx_us >= config_.peer_idle_timeout_us) idle_fds.push_back(fd);
    }
    for (int fd : idle_fds) {
      BRISK_LOG_WARN << "reaping idle peer on fd " << fd;
      ++stats_.idle_disconnects;
      close_connection(fd);
    }
  }

  // Periodic BATCH_ACKs to every live session: they trim the EXS replay
  // buffers, double as an ISM-is-alive signal, and a repeated cursor is
  // what triggers the EXS's go-back-N resend.
  if (resilient()) {
    for (auto& [fd, conn] : connections_) {
      if (!conn.hello_seen || conn.closing) continue;
      if (now - conn.last_ack_sent_us < config_.ack_period_us) continue;
      Status st = send_ack(conn, tp::MsgType::batch_ack);
      if (!st) BRISK_LOG_WARN << "batch_ack to node " << conn.node << " failed";
    }
  }

  // Quarantine expiry: forget sessions whose node never came back.
  std::vector<NodeId> expired;
  for (const auto& [node, session] : sessions_) {
    if (session.connected) continue;
    if (now - session.disconnected_at >= config_.quarantine_timeout_us) {
      expired.push_back(node);
    }
  }
  for (NodeId node : expired) expire_session(node);
}

void Ism::expire_session(NodeId node) {
  const std::size_t drained = pipeline_->remove_node(node);
  ++stats_.sessions_expired;
  sessions_.erase(node);
  stats_.records_drained_on_expiry = pipeline_->stats().oob_records;
  if (pipeline_->threaded()) {
    BRISK_LOG_INFO << "session for node " << node << " expired (drain queued to shard "
                   << shard_of_node(node, pipeline_->shard_count()) << ")";
  } else {
    BRISK_LOG_INFO << "session for node " << node << " expired (" << drained
                   << " pending records drained)";
  }
}

void Ism::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;

  if (!conn.closing) {
    conn.closing = true;
    if (conn.hello_seen) {
      nodes_.erase(conn.node);
      auto sit = sessions_.find(conn.node);
      if (sit != sessions_.end()) {
        if (conn.saw_bye) {
          // Clean shutdown: forget the cursor but let anything still pending
          // drain through the sorter in timestamp order, merged with the
          // other nodes — only crashed sessions get the out-of-band drain.
          sessions_.erase(sit);
        } else if (config_.quarantine_timeout_us == 0) {
          expire_session(conn.node);
        } else {
          sit->second.connected = false;
          sit->second.disconnected_at = monotonic_micros();
          sit->second.hole_since = 0;
        }
      }
    }
  }

  if (threaded() && conn.lane && !conn.reader_done) {
    // A reader still polls this fd; closing it now would race. Shut the
    // socket down instead — the reader observes EOF, emits its `closed`
    // event, and the drain path re-enters here with reader_done set.
    ::shutdown(fd, SHUT_RDWR);
    return;
  }
  finish_close(fd);
}

void Ism::finish_close(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (!threaded()) (void)loop_->unwatch(fd);
  if (it->second.lane && reader_loads_[it->second.reader_index] > 0) {
    --reader_loads_[it->second.reader_index];
  }
  connections_.erase(it);
  stats_.active_connections = connections_.size();
}

int Ism::node_fd_by_index(std::size_t index) const {
  std::size_t i = 0;
  for (const auto& [node, fd] : nodes_) {
    if (i == index) return fd;
    ++i;
  }
  return -1;
}

Status Ism::run() { return loop_->run(config_.select_timeout_us); }

Status Ism::run_for(TimeMicros duration) {
  const TimeMicros deadline = monotonic_micros() + duration;
  while (monotonic_micros() < deadline && !loop_->stopped()) {
    auto polled = loop_->poll_once(config_.select_timeout_us);
    if (!polled) return polled.status();
  }
  return Status::ok();
}

Status Ism::cycle() {
  auto polled = loop_->poll_once(config_.select_timeout_us);
  if (!polled) return polled.status();
  return Status::ok();
}

Status Ism::drain() {
  drain_ingest();
  Status st = pipeline_->drain();
  if (!st) return st;
  stats_.records_drained_on_expiry = pipeline_->stats().oob_records;
  return output_->flush();
}

// ---- SocketSyncTransport ----------------------------------------------------

std::size_t Ism::SocketSyncTransport::slave_count() const noexcept {
  return ism_.nodes_.size();
}

Result<clk::PollSample> Ism::SocketSyncTransport::poll(std::size_t index) {
  const int fd = ism_.node_fd_by_index(index);
  if (fd < 0) return Status(Errc::not_found, "no such slave");
  auto it = ism_.connections_.find(fd);
  if (it == ism_.connections_.end()) return Status(Errc::not_found, "connection gone");
  Connection& conn = it->second;

  const std::uint32_t request_id = ism_.next_request_id_++;
  if (ism_.next_request_id_ == 0) ism_.next_request_id_ = 1;

  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(tp::MsgType::time_req, enc);
  tp::encode_time_req({request_id}, enc);

  clk::PollSample sample;
  sample.local_send = ism_.clock_.now();
  Status st = ism_.send_frame(conn, out.view());
  if (!st) return st;

  // Wait for the matching TIME_RESP on this connection, dispatching any
  // data frames that precede it in the stream.
  ism_.pending_poll_request_ = request_id;
  ism_.pending_poll_answered_ = false;
  const TimeMicros deadline = monotonic_micros() + ism_.config_.sync_poll_timeout_us;
  Status wait_status = Status::ok();
  while (!ism_.pending_poll_answered_) {
    const TimeMicros remaining = deadline - monotonic_micros();
    if (remaining <= 0) {
      wait_status = Status(Errc::timeout, "time poll timed out");
      break;
    }
    if (ism_.threaded()) {
      // The response arrives through the fd's reader thread; wait on the
      // readers' wakeup pipes and drain lanes as events land.
      std::vector<pollfd> wait_fds;
      wait_fds.reserve(ism_.readers_.size());
      for (auto& reader : ism_.readers_) {
        wait_fds.push_back(pollfd{reader->wakeup_fd(), POLLIN, 0});
      }
      int wait_ms = static_cast<int>(remaining / 1'000);
      if (wait_ms == 0) wait_ms = 1;
      const int ready = ::poll(wait_fds.data(), wait_fds.size(), wait_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        wait_status = Status(Errc::io_error, "poll during time poll");
        break;
      }
      for (auto& reader : ism_.readers_) reader->drain_wakeup();
      ism_.drain_ingest();
    } else {
      fd_set read_set;
      FD_ZERO(&read_set);
      FD_SET(fd, &read_set);
      timeval tv{};
      tv.tv_sec = remaining / 1'000'000;
      tv.tv_usec = remaining % 1'000'000;
      const int ready = ::select(fd + 1, &read_set, nullptr, nullptr, &tv);
      if (ready < 0) {
        if (errno == EINTR) continue;
        wait_status = Status(Errc::io_error, "select during time poll");
        break;
      }
      if (ready == 0) continue;  // recheck deadline
      ism_.on_connection_readable(fd);
    }
    auto alive = ism_.connections_.find(fd);
    if (alive == ism_.connections_.end() || alive->second.closing) {
      wait_status = Status(Errc::closed, "connection died during poll");
      break;
    }
  }
  ism_.pending_poll_request_ = 0;
  if (!wait_status) return wait_status;

  sample.local_recv = ism_.clock_.now();
  sample.remote_time = ism_.pending_poll_slave_time_;
  return sample;
}

Status Ism::SocketSyncTransport::adjust(std::size_t index, TimeMicros delta) {
  const int fd = ism_.node_fd_by_index(index);
  if (fd < 0) return Status(Errc::not_found, "no such slave");
  auto it = ism_.connections_.find(fd);
  if (it == ism_.connections_.end()) return Status(Errc::not_found, "connection gone");
  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(tp::MsgType::adjust, enc);
  tp::encode_adjust({delta}, enc);
  return ism_.send_frame(it->second, out.view());
}

}  // namespace brisk::ism
