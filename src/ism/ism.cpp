#include "ism/ism.hpp"

#include <poll.h>
#include <sys/select.h>
#include <sys/socket.h>

#include <string>

#include "common/logging.hpp"
#include "common/time_util.hpp"
#include "sensors/metrics_record.hpp"
#include "sensors/trace_record.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::ism {
namespace {

inline void bump(std::atomic<std::uint64_t>& cell, std::uint64_t delta = 1) noexcept {
  cell.fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace

Ism::Ism(const IsmConfig& config, clk::Clock& clock, std::shared_ptr<Sink> output,
         net::TcpListener listener)
    : config_(config),
      clock_(clock),
      output_(std::move(output)),
      listener_(std::move(listener)),
      loop_(net::make_poller(config.poller)),
      sync_transport_(*this) {
  PipelineConfig pipeline_config;
  pipeline_config.shards = config_.sorter_shards;
  pipeline_config.shard_queue_records = config_.shard_queue_records;
  pipeline_config.poll_timeout_us = config_.select_timeout_us;
  pipeline_config.sorter = config_.sorter;
  pipeline_config.cre = config_.cre;
  latency_ = std::make_unique<metrics::LatencyRecorder>(metrics_);
  pipeline_ = std::make_unique<OrderingPipeline>(
      pipeline_config, clock_,
      [this](const sensors::Record& record) {
        // Single exit of the ordering pipeline (normal and out-of-band
        // drains alike): the drained count here is what replenishes the
        // node's credit window.
        note_record_drained(record.node);
        if (record.trace) {
          deliver_traced(record);
          return;
        }
        Status st = output_->accept(record);
        if (!st && st.code() != Errc::buffer_full) {
          BRISK_LOG_WARN << "output sink failed: " << st.to_string();
        }
      },
      [this] { (void)output_->flush(); },
      // May fire on the merger thread; the sync service lives on the
      // ordering thread, so just raise a flag idle_work() consumes.
      [this] { extra_sync_requested_.store(true, std::memory_order_release); });
  if (config_.enable_sync) {
    sync_service_ = std::make_unique<clk::SyncService>(config_.sync, sync_transport_, clock_);
  }
  register_metrics();
}

void Ism::register_metrics() {
  // One collector bridges every existing stats struct into the registry —
  // the hot paths keep their own counters, the snapshot unifies the names.
  // Snapshots run on the ordering thread, so ordering-thread state
  // (sessions_, fault_) is safe to read here.
  metrics_.add_collector([this](metrics::SnapshotBuilder& b) {
    const IsmStats s = stats();
    b.counter("ism.connections_accepted", s.connections_accepted);
    b.gauge("ism.active_connections", s.active_connections);
    b.gauge("ism.sessions", sessions_.size());
    b.counter("ism.batches_received", s.batches_received);
    b.counter("ism.records_received", s.records_received);
    b.counter("ism.bytes_received", s.bytes_received);
    b.counter("ism.protocol_errors", s.protocol_errors);
    b.counter("ism.ring_drops_reported", s.ring_drops_reported);
    b.counter("ism.flow_control_drops", s.flow_control_drops);
    b.counter("ism.ingest_stalls", s.ingest_stalls);
    b.counter("ism.batch_seq_gaps", s.batch_seq_gaps);
    b.counter("ism.rejoins", s.rejoins);
    b.counter("ism.duplicate_batches_dropped", s.duplicate_batches_dropped);
    b.counter("ism.out_of_order_batches_dropped", s.out_of_order_batches_dropped);
    b.counter("ism.idle_disconnects", s.idle_disconnects);
    b.counter("ism.sessions_expired", s.sessions_expired);
    b.counter("ism.records_drained_on_expiry", s.records_drained_on_expiry);
    b.counter("ism.acks_sent", s.acks_sent);
    b.counter("ism.heartbeats_received", s.heartbeats_received);
    b.counter("ism.credit_grants_sent", s.credit_grants_sent);
    b.counter("ism.zero_window_grants", s.zero_window_grants);
    b.counter("ism.reader_migrations", s.reader_migrations);

    const PipelineStats p = pipeline_->stats();
    b.counter("ism.pipeline.submitted", p.submitted);
    b.counter("ism.pipeline.merged", p.merged);
    b.counter("ism.pipeline.merge_inversions", p.merge_inversions);
    b.counter("ism.pipeline.submit_stalls", p.submit_stalls);
    b.counter("ism.pipeline.oob_records", p.oob_records);

    const SorterStats so = pipeline_->sorter_stats();
    b.counter("ism.sorter.pushed", so.pushed);
    b.counter("ism.sorter.emitted", so.emitted);
    b.counter("ism.sorter.out_of_order_emissions", so.out_of_order_emissions);
    b.counter("ism.sorter.frame_raises", so.frame_raises);
    b.counter("ism.sorter.overflow_emits", so.overflow_emits);
    b.counter("ism.sorter.overflow_drops", so.overflow_drops);
    b.gauge("ism.sorter.max_lateness_us", static_cast<std::uint64_t>(so.max_lateness_us));
    const std::vector<std::size_t> depths = pipeline_->shard_depths();
    for (std::size_t i = 0; i < depths.size(); ++i) {
      b.gauge("ism.sorter.shard" + std::to_string(i) + ".depth", depths[i]);
    }

    // The disorder substrate for adaptive delay-window policies: how far
    // behind the emitted frontier late records land, and how many there
    // were. Zero buckets are skipped — bucket samples are self-describing.
    b.counter("sort.late_drops", so.late_drops);
    auto emit_disorder = [&b](const std::string& base, const metrics::Histogram& h) {
      for (std::size_t i = 0; i < metrics::Histogram::kBucketCount; ++i) {
        const std::uint64_t count = h.bucket_count_at(i);
        if (count != 0) b.histogram_bucket(base, metrics::Histogram::bucket_bound(i), count);
      }
    };
    metrics::Histogram disorder;
    pipeline_->merge_disorder(disorder);
    emit_disorder("sort.disorder_us", disorder);
    if (pipeline_->shard_count() > 1) {
      for (std::size_t i = 0; i < pipeline_->shard_count(); ++i) {
        metrics::Histogram shard_disorder;
        pipeline_->merge_shard_disorder(i, shard_disorder);
        emit_disorder("sort.shard" + std::to_string(i) + ".disorder_us", shard_disorder);
      }
    }

    const CreStats c = pipeline_->cre_stats();
    b.counter("ism.cre.reasons_seen", c.reasons_seen);
    b.counter("ism.cre.conseqs_seen", c.conseqs_seen);
    b.counter("ism.cre.matched", c.matched);
    b.counter("ism.cre.tachyons_repaired", c.tachyons_repaired);
    b.counter("ism.cre.conseqs_held", c.conseqs_held);
    b.counter("ism.cre.hold_timeouts", c.hold_timeouts);
    b.counter("ism.cre.extra_sync_requests", c.extra_sync_requests);

    if (fault_.active()) {
      const net::FaultStats& f = fault_.stats();
      b.counter("ism.fault.frames", f.frames);
      b.counter("ism.fault.dropped", f.dropped);
      b.counter("ism.fault.stalled", f.stalled);
      b.counter("ism.fault.truncated", f.truncated);
      b.counter("ism.fault.duplicated", f.duplicated);
    }
  });
}

IsmStats Ism::stats() const noexcept {
  IsmStats out;
  out.connections_accepted = stats_.connections_accepted.load(std::memory_order_relaxed);
  out.active_connections = stats_.active_connections.load(std::memory_order_relaxed);
  out.batches_received = stats_.batches_received.load(std::memory_order_relaxed);
  out.records_received = stats_.records_received.load(std::memory_order_relaxed);
  out.bytes_received = stats_.bytes_received.load(std::memory_order_relaxed);
  out.protocol_errors = stats_.protocol_errors.load(std::memory_order_relaxed);
  out.ring_drops_reported = stats_.ring_drops_reported.load(std::memory_order_relaxed);
  out.flow_control_drops = stats_.flow_control_drops.load(std::memory_order_relaxed);
  out.ingest_stalls = stats_.ingest_stalls.load(std::memory_order_relaxed);
  out.batch_seq_gaps = stats_.batch_seq_gaps.load(std::memory_order_relaxed);
  out.rejoins = stats_.rejoins.load(std::memory_order_relaxed);
  out.duplicate_batches_dropped =
      stats_.duplicate_batches_dropped.load(std::memory_order_relaxed);
  out.out_of_order_batches_dropped =
      stats_.out_of_order_batches_dropped.load(std::memory_order_relaxed);
  out.idle_disconnects = stats_.idle_disconnects.load(std::memory_order_relaxed);
  out.sessions_expired = stats_.sessions_expired.load(std::memory_order_relaxed);
  out.records_drained_on_expiry =
      stats_.records_drained_on_expiry.load(std::memory_order_relaxed);
  out.acks_sent = stats_.acks_sent.load(std::memory_order_relaxed);
  out.heartbeats_received = stats_.heartbeats_received.load(std::memory_order_relaxed);
  out.credit_grants_sent = stats_.credit_grants_sent.load(std::memory_order_relaxed);
  out.zero_window_grants = stats_.zero_window_grants.load(std::memory_order_relaxed);
  out.reader_migrations = stats_.reader_migrations.load(std::memory_order_relaxed);
  return out;
}

Ism::~Ism() {
  // Readers must die before connections_: they hold raw fds into it.
  for (auto& reader : readers_) reader->stop_and_join();
}

Result<std::unique_ptr<Ism>> Ism::start(const IsmConfig& config, clk::Clock& clock,
                                        std::shared_ptr<Sink> output) {
  if (!output) return Status(Errc::invalid_argument, "null output sink");
  auto listener = net::TcpListener::listen(config.port);
  if (!listener) return listener.status();
  Status st = listener.value().set_nonblocking(true);
  if (!st) return st;

  auto ism = std::unique_ptr<Ism>(
      new Ism(config, clock, std::move(output), std::move(listener).value()));
  Ism* raw = ism.get();
  st = ism->loop_->watch(ism->listener_.fd(), [raw](int, net::Readiness) {
    raw->on_listener_readable();
  });
  if (!st) return st;
  ism->loop_->set_idle([raw] { raw->idle_work(); });

  for (std::size_t i = 0; i < config.reader_threads; ++i) {
    ReaderConfig reader_config;
    reader_config.poller = config.poller;
    reader_config.lane_depth = config.ingest_queue_frames;
    reader_config.poll_timeout_us = config.select_timeout_us;
    auto reader = ReaderThread::start(reader_config);
    if (!reader) return reader.status();
    // A reader's wakeup means events are pending on some lane; drain them
    // all — lanes are cheap to check and this keeps the wiring simple.
    st = ism->loop_->watch(reader.value()->wakeup_fd(),
                           [raw, r = reader.value().get()](int, net::Readiness) {
                             r->drain_wakeup();
                             raw->drain_ingest();
                           });
    if (!st) return st;
    ism->readers_.push_back(std::move(reader).value());
  }
  ism->reader_loads_.assign(ism->readers_.size(), 0);
  ism->reader_rates_.assign(ism->readers_.size(), 0.0);
  return ism;
}

void Ism::on_listener_readable() {
  for (;;) {
    auto client = listener_.accept();
    if (!client) {
      if (client.status().code() != Errc::would_block) {
        BRISK_LOG_WARN << "accept failed: " << client.status().to_string();
      }
      return;
    }
    net::TcpSocket socket = std::move(client).value();
    (void)socket.set_nodelay(true);
    if (config_.sndbuf_bytes > 0) {
      (void)::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDBUF, &config_.sndbuf_bytes,
                         sizeof(config_.sndbuf_bytes));
    }
    if (!socket.set_nonblocking(true)) continue;
    const int fd = socket.fd();
    Connection conn;
    conn.socket = std::move(socket);
    conn.outbox = net::FrameSendBuffer(config_.outbox_bytes);
    conn.last_rx_us = monotonic_micros();
    if (threaded()) {
      conn.lane = std::make_shared<IngestLane>(config_.ingest_queue_frames);
      conn.reader_index = least_loaded_reader(reader_rates_, reader_loads_);
    }
    auto [it, inserted] = connections_.emplace(fd, std::move(conn));
    if (!inserted) continue;
    if (threaded()) {
      ++reader_loads_[it->second.reader_index];
      readers_[it->second.reader_index]->add_connection(fd, it->second.lane);
    } else {
      Status st = watch_connection(fd);
      if (!st) {
        connections_.erase(fd);
        continue;
      }
    }
    bump(stats_.connections_accepted);
    stats_.active_connections.store(connections_.size(), std::memory_order_relaxed);
  }
}

Status Ism::watch_connection(int fd) {
  // One combined callback serves both interests; only the interest mask
  // changes as want_writable toggles, so re-watching is a cheap upsert.
  auto it = connections_.find(fd);
  const bool want_writable = it != connections_.end() && it->second.want_writable;
  net::Readiness interest = net::Readiness::readable;
  if (want_writable) interest = interest | net::Readiness::writable;
  return loop_->watch(fd, interest, [this](int ready_fd, net::Readiness ready) {
    // Pump first: it is cheap, and the read side may close the connection.
    if (any(ready & net::Readiness::writable)) on_connection_writable(ready_fd);
    if (any(ready & net::Readiness::readable)) on_connection_readable(ready_fd);
  });
}

void Ism::on_connection_writable(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (conn.closing) return;
  Status st = conn.outbox.pump(conn.socket);
  if (!st && send_failure_is_fatal(conn, st)) {
    BRISK_LOG_WARN << "outbox to node " << conn.node << " failed: " << st.to_string();
    close_connection(fd);
    return;
  }
  if (conn.outbox.empty()) conn.outbox_full_since = 0;
  update_write_interest(fd, conn);
}

void Ism::update_write_interest(int fd, Connection& conn) {
  if (!config_.readiness_pump) return;  // legacy: idle-cycle walk pumps
  const bool want = !conn.outbox.empty() && !conn.closing;
  if (want == conn.want_writable) return;
  conn.want_writable = want;
  if (threaded()) {
    // Readable lives on a reader thread's poller; the ordering thread's
    // loop only ever holds a writable-only watch, and only while the
    // outbox has deferred bytes.
    if (want) {
      Status st = loop_->watch(fd, net::Readiness::writable,
                               [this](int ready_fd, net::Readiness) {
                                 on_connection_writable(ready_fd);
                               });
      if (!st) conn.want_writable = false;  // idle pump is the fallback
    } else {
      (void)loop_->unwatch(fd);
    }
  } else {
    Status st = watch_connection(fd);
    if (!st && want) conn.want_writable = false;
  }
}

bool Ism::send_failure_is_fatal(Connection& conn, const Status& st) {
  if (st.code() != Errc::buffer_full) return true;  // genuine socket error
  // The outbox is at its cap: the peer is not reading fast enough, but the
  // socket is alive. Give it the stall grace period before reaping.
  const TimeMicros now = monotonic_micros();
  if (conn.outbox_full_since == 0) conn.outbox_full_since = now;
  if (config_.outbox_stall_timeout_us == 0) return true;  // legacy: reap now
  return now - conn.outbox_full_since >= config_.outbox_stall_timeout_us;
}

void Ism::on_connection_readable(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;

  std::uint8_t chunk[64 * 1024];
  for (;;) {
    auto n = conn.socket.read_some(MutableByteSpan{chunk, sizeof chunk});
    if (!n) {
      if (n.status().code() == Errc::would_block) break;
      close_connection(fd);
      return;
    }
    if (n.value() == 0) {  // orderly close
      close_connection(fd);
      return;
    }
    conn.last_rx_us = monotonic_micros();
    bump(stats_.bytes_received, n.value());
    conn.reader.feed(ByteSpan{chunk, n.value()});
    for (;;) {
      auto frame = conn.reader.next();
      if (!frame) {
        bump(stats_.protocol_errors);
        close_connection(fd);
        return;
      }
      if (!frame.value().has_value()) break;
      Status st = dispatch_frame(conn, frame.value()->view());
      if (!st) {
        if (st.code() != Errc::closed) {
          bump(stats_.protocol_errors);
          BRISK_LOG_WARN << "frame dispatch failed: " << st.to_string();
        }
        close_connection(fd);
        return;
      }
    }
  }
}

// ---- threaded ingest --------------------------------------------------------

void Ism::drain_ingest() {
  if (!threaded()) return;
  // Snapshot fds: processing an event may erase connections.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) {
    if (conn.lane) fds.push_back(fd);
  }
  for (int fd : fds) {
    for (;;) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) break;
      IngestEvent event;
      if (!it->second.lane->queue.try_pop(event)) {
        // Lane empty. If the reader stalled on it, there is room again now;
        // let it continue reading the socket.
        if (it->second.lane->stalled.load(std::memory_order_acquire) &&
            !it->second.reader_done) {
          bump(stats_.ingest_stalls);
          readers_[it->second.reader_index]->resume(fd);
        }
        break;
      }
      process_ingest_event(fd, std::move(event));
    }
  }
}

void Ism::process_ingest_event(int fd, IngestEvent event) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  conn.last_rx_us = monotonic_micros();
  bump(stats_.bytes_received, event.wire_bytes);

  switch (event.kind) {
    case IngestEvent::Kind::closed:
      conn.reader_done = true;
      // An ok status is an orderly EOF and io_error a peer reset — only
      // frame-layer garbage (oversized frame, undecodable batch) counts
      // as a protocol violation.
      if (!event.error && event.error.code() != Errc::io_error && !conn.closing) {
        bump(stats_.protocol_errors);
        BRISK_LOG_WARN << "ingest error on fd " << fd << ": " << event.error.to_string();
      }
      close_connection(fd);
      return;
    case IngestEvent::Kind::batch: {
      if (!conn.hello_seen) {
        bump(stats_.protocol_errors);
        close_connection(fd);
        return;
      }
      // Feed placement: the reader's load is the records it drains, not the
      // connections it happens to hold.
      if (conn.reader_index < reader_rates_.size()) {
        reader_rates_[conn.reader_index] +=
            static_cast<double>(event.batch.records.size());
        conn.drained_rate += static_cast<double>(event.batch.records.size());
      }
      handle_batch(conn, std::move(event.batch));
      return;
    }
    case IngestEvent::Kind::frame: {
      Status st = dispatch_frame(conn, event.payload.view());
      if (!st) {
        if (st.code() != Errc::closed) {
          bump(stats_.protocol_errors);
          BRISK_LOG_WARN << "frame dispatch failed: " << st.to_string();
        }
        close_connection(fd);
      }
      return;
    }
    case IngestEvent::Kind::released: {
      // The old reader is finished with the fd and everything it produced
      // has been consumed; complete the migration (or the close, if the
      // connection was torn down while the move was in flight).
      if (conn.closing) {
        conn.reader_done = true;
        conn.migrate_target = -1;
        finish_close(fd);
        return;
      }
      if (conn.migrate_target < 0) return;
      const auto to = static_cast<std::size_t>(conn.migrate_target);
      conn.migrate_target = -1;
      if (reader_loads_[conn.reader_index] > 0) --reader_loads_[conn.reader_index];
      // Carry the connection's decayed rate across so the imbalance signal
      // reflects the move now, not a decay period later.
      reader_rates_[conn.reader_index] -= conn.drained_rate;
      if (reader_rates_[conn.reader_index] < 0.0) reader_rates_[conn.reader_index] = 0.0;
      conn.reader_index = to;
      ++reader_loads_[to];
      reader_rates_[to] += conn.drained_rate;
      readers_[to]->add_connection(fd, conn.lane);
      return;
    }
  }
}

Status Ism::dispatch_frame(Connection& conn, ByteSpan payload) {
  xdr::Decoder decoder(payload);
  auto type = tp::peek_type(decoder);
  if (!type) return type.status();
  switch (type.value()) {
    case tp::MsgType::hello: {
      auto hello = tp::decode_hello(decoder);
      if (!hello) return hello.status();
      if (hello.value().version < tp::kMinProtocolVersion ||
          hello.value().version > tp::kProtocolVersion) {
        return Status(Errc::unsupported, "protocol version mismatch");
      }
      const bool ordered_stream =
          (hello.value().capabilities & tp::kCapabilityOrderedStream) != 0;
      if (ordered_stream && hello.value().version < tp::kCreditProtocolVersion) {
        // The ordered-stream fast path leans on the credit window for
        // boundedness; a relay that cannot pace has no business bypassing
        // the sorter shards.
        return Status(Errc::unsupported, "ordered-stream capability requires v3");
      }
      if (nodes_.count(hello.value().node) != 0) {
        // A live connection already owns this node id. Dead-but-unclosed
        // predecessors are reaped by the idle timeout, after which the
        // newcomer's reconnect loop gets through.
        return Status(Errc::already_exists, "node id already connected");
      }
      conn.node = hello.value().node;
      conn.version = hello.value().version;
      conn.hello_seen = true;
      if (config_.flow_control_rate_per_sec > 0.0) {
        conn.flow_control = std::make_unique<TokenBucket>(config_.flow_control_rate_per_sec,
                                                          config_.flow_control_burst);
      }
      nodes_[conn.node] = conn.socket.fd();

      auto [sit, fresh] = sessions_.try_emplace(conn.node);
      NodeSession& session = sit->second;
      if (fresh || session.incarnation != hello.value().incarnation) {
        // New node, or the EXS process restarted: its batch_seq starts over
        // at zero, so the cursor must too (the quarantined queue of a
        // previous incarnation, if any, stays and drains normally).
        session = NodeSession{};
        session.incarnation = hello.value().incarnation;
        BRISK_LOG_INFO << "node " << conn.node << " connected (incarnation "
                       << hello.value().incarnation << ")";
      } else {
        bump(stats_.rejoins);
        flight_.record(sensors::EventKind::session_rejoined, conn.node,
                       session.next_batch_seq, clock_.now());
        BRISK_LOG_INFO << "node " << conn.node << " rejoined at batch seq "
                       << session.next_batch_seq;
      }
      session.connected = true;
      session.disconnected_at = 0;
      session.hole_since = 0;
      if (ordered_stream) {
        // Relay session: its drained cell is bumped by the merge as it
        // releases lane records (forwarded records carry *origin* node ids,
        // so the per-node COW map would never find this session). Do not
        // publish it there.
        conn.relay = true;
        if (!session.has_relay_lane) {
          session.records_drained = std::make_shared<std::atomic<std::uint64_t>>(0);
          session.relay_lane = pipeline_->add_relay_lane(session.records_drained);
          session.has_relay_lane = true;
        } else {
          pipeline_->resume_relay_lane(session.relay_lane);
        }
        conn.relay_lane = session.relay_lane;
        BRISK_LOG_INFO << "node " << conn.node << " is a relay (ordered-ingress lane "
                       << session.relay_lane << ")";
      } else if (credits_enabled() && !session.records_drained) {
        // Fresh session (or an incarnation reset wiped the old one): give it
        // a drained cell and publish it for the pipeline-sink hook.
        session.records_drained = std::make_shared<std::atomic<std::uint64_t>>(0);
        publish_drained_counter(conn.node, session.records_drained);
      }
      // The HELLO_ACK cursor tells the EXS where to resume; it releases the
      // EXS's send gate, so it must go out before any BATCH_ACK.
      return send_ack(conn, tp::MsgType::hello_ack);
    }
    case tp::MsgType::data_batch: {
      if (!conn.hello_seen) return Status(Errc::malformed, "batch before hello");
      auto batch = tp::decode_batch(decoder);
      if (!batch) return batch.status();
      handle_batch(conn, std::move(batch).value());
      return Status::ok();
    }
    case tp::MsgType::relay_batch: {
      if (!conn.hello_seen) return Status(Errc::malformed, "relay batch before hello");
      if (!conn.relay) {
        return Status(Errc::malformed, "relay batch from non-relay peer");
      }
      auto batch = tp::decode_relay_batch(decoder);
      if (!batch) return batch.status();
      handle_relay_batch(conn, std::move(batch).value());
      return Status::ok();
    }
    case tp::MsgType::relay_watermark: {
      if (!conn.hello_seen || !conn.relay) {
        return Status(Errc::malformed, "relay watermark from non-relay peer");
      }
      auto wm = tp::decode_relay_watermark(decoder);
      if (!wm) return wm.status();
      pipeline_->advance_relay_watermark(conn.relay_lane, wm.value().watermark);
      return Status::ok();
    }
    case tp::MsgType::time_resp: {
      auto resp = tp::decode_time_resp(decoder);
      if (!resp) return resp.status();
      if (pending_poll_request_ != 0 && resp.value().request_id == pending_poll_request_) {
        pending_poll_answered_ = true;
        pending_poll_slave_time_ = resp.value().slave_time;
      } else {
        BRISK_LOG_DEBUG << "stale time_resp " << resp.value().request_id;
      }
      return Status::ok();
    }
    case tp::MsgType::heartbeat:
      bump(stats_.heartbeats_received);  // reception already refreshed last_rx_us
      return Status::ok();
    case tp::MsgType::bye:
      conn.saw_bye = true;
      return Status(Errc::closed, "EXS said bye");
    default:
      return Status(Errc::malformed, "unexpected message type at ISM");
  }
}

bool Ism::admit_batch_seq(const Connection& conn, NodeSession& session, std::uint32_t seq) {
  if (!resilient()) {
    // v1-style accounting: every discontinuity is an immediately declared
    // gap and the cursor follows the sender.
    if (seq != session.next_batch_seq) {
      bump(stats_.batch_seq_gaps);
      BRISK_LOG_WARN << "node " << conn.node << " batch seq gap: expected "
                     << session.next_batch_seq << ", got " << seq;
    }
    session.next_batch_seq = seq + 1;
    return true;
  }
  if (seq == session.next_batch_seq) {
    session.next_batch_seq = seq + 1;
    session.hole_since = 0;
    return true;
  }
  if (seq < session.next_batch_seq) {
    // Already applied — a replay after a reconnect, or a duplicated frame.
    bump(stats_.duplicate_batches_dropped);
    return false;
  }
  // seq > cursor: a batch went missing in flight. Go-back-N: drop everything
  // above the hole and let the stuck ack cursor trigger the EXS's resend,
  // which starts at the missing batch.
  const TimeMicros now = monotonic_micros();
  if (session.hole_since == 0) {
    session.hole_since = now;
    session.lowest_pending_seq = seq;
  } else if (seq < session.lowest_pending_seq) {
    session.lowest_pending_seq = seq;
  }
  bump(stats_.out_of_order_batches_dropped);
  if (config_.gap_skip_timeout_us > 0 &&
      now - session.hole_since >= config_.gap_skip_timeout_us) {
    // The resend never came: the EXS evicted the missing batches from its
    // replay buffer (declared loss). Jump the cursor to the lowest batch
    // still on offer so the stream can make progress again.
    bump(stats_.batch_seq_gaps);
    flight_.record(sensors::EventKind::batch_gap, conn.node,
                   session.lowest_pending_seq - session.next_batch_seq, clock_.now());
    BRISK_LOG_WARN << "node " << conn.node << " declaring batch gap: "
                   << session.next_batch_seq << ".." << session.lowest_pending_seq - 1;
    session.next_batch_seq = session.lowest_pending_seq;
    session.hole_since = 0;
    if (seq == session.next_batch_seq) {
      session.next_batch_seq = seq + 1;
      return true;
    }
  }
  return false;
}

void Ism::handle_batch(Connection& conn, tp::Batch batch) {
  bump(stats_.batches_received);
  NodeSession& session = sessions_[conn.node];
  if (!admit_batch_seq(conn, session, batch.header.batch_seq)) return;
  bump(stats_.records_received, batch.records.size());
  if (batch.header.ring_dropped_total >= session.ring_dropped_total) {
    bump(stats_.ring_drops_reported, batch.header.ring_dropped_total - session.ring_dropped_total);
    session.ring_dropped_total = batch.header.ring_dropped_total;
  }
  for (sensors::Record& record : batch.records) {
    if (conn.flow_control && !conn.flow_control->admit(clock_.now())) {
      bump(stats_.flow_control_drops);
      continue;
    }
    record.node = conn.node;
    // Credits account only records that actually enter the pipeline —
    // flow-control drops above never become backlog.
    ++session.records_admitted;
    if (record.trace) {
      // Ordering-thread stamp: the ingest side of the pipeline admitted the
      // decoded record (reader threads decode but do not stamp — the
      // ordering thread's clock keeps stamps coherent under ManualClock).
      record.trace->stamp(sensors::TraceStage::ism_ingest, clock_.now());
    }
    route_record(std::move(record));
  }
}

void Ism::handle_relay_batch(Connection& conn, tp::RelayBatch batch) {
  bump(stats_.batches_received);
  NodeSession& session = sessions_[conn.node];
  if (!admit_batch_seq(conn, session, batch.header.batch_seq)) return;
  bump(stats_.records_received, batch.records.size());
  // No token bucket and no per-record rerouting: the relay already paced
  // (its own credit window) and each record keeps the origin node id the
  // decoder restored. Dropping or reordering here would break the lane's
  // sorted-stream invariant.
  session.records_admitted += batch.records.size();
  // Relay batches reach here as raw frame events, so the reader drained-rate
  // accounting in process_ingest_event never saw them; credit them here.
  if (conn.reader_index < reader_rates_.size()) {
    reader_rates_[conn.reader_index] += static_cast<double>(batch.records.size());
    conn.drained_rate += static_cast<double>(batch.records.size());
  }
  for (sensors::Record& record : batch.records) {
    if (record.trace) {
      record.trace->stamp(sensors::TraceStage::ism_ingest, clock_.now());
    }
  }
  Status st = pipeline_->submit_relay(conn.relay_lane, std::move(batch.records),
                                      batch.header.watermark);
  if (!st) {
    BRISK_LOG_WARN << "relay lane submit failed: " << st.to_string();
  }
}

void Ism::route_record(sensors::Record record) {
  Status st = pipeline_->submit(std::move(record));
  if (!st) {
    BRISK_LOG_WARN << "pipeline submit failed: " << st.to_string();
  }
}

void Ism::deliver_traced(const sensors::Record& record) {
  sensors::Record stripped = record;
  stripped.trace->stamp(sensors::TraceStage::sink_delivery, clock_.now());
  latency_->observe(*stripped.trace);
  sensors::Record span = sensors::make_trace_record(
      stripped.node, trace_sequence_.fetch_add(1, std::memory_order_relaxed),
      stripped.timestamp, *stripped.trace);
  // The data record reaches the sinks without its annotation, so sink bytes
  // are identical with tracing on and off; the span list follows as its own
  // reserved-sensor record.
  stripped.trace.reset();
  Status st = output_->accept(stripped);
  if (!st && st.code() != Errc::buffer_full) {
    BRISK_LOG_WARN << "output sink failed: " << st.to_string();
  }
  st = output_->accept(span);
  if (!st && st.code() != Errc::buffer_full) {
    BRISK_LOG_WARN << "output sink failed (trace record): " << st.to_string();
  }
}

void Ism::idle_work() {
  drain_ingest();
  if (metrics::consume_flight_dump_request()) metrics::dump_flight_recorders(stderr);
  maybe_emit_metrics();
  pipeline_->service();
  session_sweep();
  pump_outboxes();
  if (extra_sync_requested_.exchange(false, std::memory_order_acq_rel) && sync_service_) {
    sync_service_->request_extra_round();
  }
  if (sync_service_) sync_service_->maybe_run_round();
  // Sharded removals drain asynchronously; keep the counter in step with
  // what has actually been drained so far (exact already in inline mode).
  stats_.records_drained_on_expiry.store(pipeline_->stats().oob_records, std::memory_order_relaxed);
  // Sharded mode flushes from the merger thread (the pipeline's flush
  // hook); flushing here too would race it.
  if (!pipeline_->threaded()) (void)output_->flush();
  // Time-windowed sinks (gateway aggregation subscriptions) close windows
  // against the merge's release watermark during lulls.
  output_->tick(pipeline_->release_watermark());
  maybe_log_stats();
}

void Ism::maybe_log_stats() {
  if (config_.stats_interval_us <= 0) return;
  const TimeMicros now = monotonic_micros();
  if (last_stats_log_us_ == 0) {  // baseline; first line after one interval
    last_stats_log_us_ = now;
    return;
  }
  if (now - last_stats_log_us_ < config_.stats_interval_us) return;
  last_stats_log_us_ = now;
  // The log line is just another consumer of the metrics snapshot — the
  // same samples the metrics records are rendered from.
  const std::vector<metrics::Sample> samples = metrics_.snapshot();
  auto value = [&samples](std::string_view name) -> std::uint64_t {
    for (const metrics::Sample& sample : samples) {
      if (sample.name == name) return sample.value;
    }
    return 0;
  };
  std::string depths;
  for (const metrics::Sample& sample : samples) {
    if (sample.name.rfind("ism.sorter.shard", 0) != 0) continue;
    if (sample.name.size() < 6 || sample.name.substr(sample.name.size() - 6) != ".depth") {
      continue;
    }
    if (!depths.empty()) depths += "/";
    depths += std::to_string(sample.value);
  }
  BRISK_LOG_INFO << "stats: sessions=" << value("ism.sessions")
                 << " conns=" << value("ism.active_connections")
                 << " batches=" << value("ism.batches_received")
                 << " records=" << value("ism.records_received")
                 << " dup_drops=" << value("ism.duplicate_batches_dropped")
                 << " replays=" << value("ism.rejoins")
                 << " gaps=" << value("ism.batch_seq_gaps")
                 << " drained=" << value("ism.records_drained_on_expiry")
                 << " sorter_depth=" << depths;
}

void Ism::maybe_emit_metrics() {
  if (config_.metrics_interval_us <= 0) return;
  const TimeMicros now = monotonic_micros();
  if (last_metrics_emit_us_ == 0) {  // baseline; first snapshot after one interval
    last_metrics_emit_us_ = now;
    return;
  }
  if (now - last_metrics_emit_us_ < config_.metrics_interval_us) return;
  last_metrics_emit_us_ = now;
  emit_metrics_snapshot();
}

void Ism::emit_metrics_snapshot() {
  const std::vector<metrics::Sample> samples = metrics_.snapshot();
  const TimeMicros timestamp = clock_.now();
  // Injected at the ordering stage: the records ride the sorter shard of the
  // reserved node and the k-way merge like any EXS's stream, so the merged
  // output stays timestamp-sorted and every registered sink sees them.
  for (sensors::Record& record : metrics::snapshot_to_records(
           samples, sensors::kIsmMetricsNodeId, timestamp, metrics_sequence_)) {
    route_record(std::move(record));
  }
  // Flight-recorder events sealed since the last snapshot follow as 0xFF03
  // records, stamped with the snapshot time (their event time rides in the
  // at_us field) so they merge cleanly with the stream they describe.
  for (const metrics::FlightEvent& event : flight_.drain_new(flight_cursor_)) {
    route_record(sensors::make_event_record(sensors::kIsmMetricsNodeId, metrics_sequence_++,
                                            timestamp, event.kind, event.subject,
                                            event.value, event.at));
  }
}

void Ism::pump_outboxes() {
  // Readiness-driven mode: connections with deferred bytes hold a writable
  // subscription and pump from on_connection_writable, so the idle cycle
  // has no per-connection outbox work at all — this walk only exists for
  // the legacy mode (and the bench comparison against it).
  if (config_.readiness_pump) return;
  std::vector<int> failed;
  for (auto& [fd, conn] : connections_) {
    if (conn.outbox.empty() || conn.closing) continue;
    Status st = conn.outbox.pump(conn.socket);
    if (!st && send_failure_is_fatal(conn, st)) {
      BRISK_LOG_WARN << "outbox to node " << conn.node << " failed: " << st.to_string();
      failed.push_back(fd);
      continue;
    }
    if (conn.outbox.empty()) conn.outbox_full_since = 0;
  }
  for (int fd : failed) close_connection(fd);
}

Status Ism::send_frame(Connection& conn, ByteSpan payload) {
  // Through the per-connection outbox: a full kernel send buffer leaves the
  // unwritten tail queued (pumped on writable readiness) instead of tearing
  // the frame mid-write and desynchronizing the peer's stream.
  Status st = fault_.write_frame(conn.socket, conn.outbox, payload);
  if (st) conn.outbox_full_since = 0;  // the cap admitted the frame
  update_write_interest(conn.socket.fd(), conn);
  return st;
}

tp::CreditGrant Ism::build_credit_grant(NodeSession& session) const noexcept {
  const std::uint64_t drained =
      session.records_drained
          ? session.records_drained->load(std::memory_order_relaxed)
          : 0;
  const std::uint64_t backlog =
      session.records_admitted > drained ? session.records_admitted - drained : 0;
  tp::CreditGrant grant;
  grant.incarnation = session.incarnation;
  grant.window_records =
      backlog < config_.credit_window_records
          ? config_.credit_window_records - static_cast<std::uint32_t>(backlog)
          : 0;
  grant.window_bytes = config_.credit_window_bytes;
  return grant;
}

void Ism::note_record_drained(NodeId node) noexcept {
  if (config_.credit_window_records == 0) return;
  const auto map = std::atomic_load_explicit(&drained_counters_, std::memory_order_acquire);
  if (!map) return;
  const auto it = map->find(node);
  if (it != map->end()) it->second->fetch_add(1, std::memory_order_relaxed);
}

void Ism::publish_drained_counter(NodeId node,
                                  std::shared_ptr<std::atomic<std::uint64_t>> cell) {
  const auto old = std::atomic_load_explicit(&drained_counters_, std::memory_order_acquire);
  auto next = old ? std::make_shared<DrainedMap>(*old) : std::make_shared<DrainedMap>();
  (*next)[node] = std::move(cell);
  std::atomic_store_explicit(&drained_counters_,
                             std::shared_ptr<const DrainedMap>(std::move(next)),
                             std::memory_order_release);
}

void Ism::retire_drained_counter(NodeId node) {
  const auto old = std::atomic_load_explicit(&drained_counters_, std::memory_order_acquire);
  if (!old || old->count(node) == 0) return;
  auto next = std::make_shared<DrainedMap>(*old);
  next->erase(node);
  std::atomic_store_explicit(&drained_counters_,
                             std::shared_ptr<const DrainedMap>(std::move(next)),
                             std::memory_order_release);
}

Status Ism::send_ack(Connection& conn, tp::MsgType type) {
  NodeSession& session = sessions_[conn.node];
  // Grants piggyback on both ack shapes, but only towards peers that speak
  // the credit extension — a v2 EXS gets byte-identical v2 acks.
  const bool grant_credits =
      credits_enabled() && conn.version >= tp::kCreditProtocolVersion;
  std::optional<tp::CreditGrant> credit;
  if (grant_credits) {
    credit = build_credit_grant(session);
    session.last_granted_records = credit->window_records;
    bump(stats_.credit_grants_sent);
    if (credit->window_records == 0) {
      bump(stats_.zero_window_grants);
      flight_.record(sensors::EventKind::zero_window_grant, conn.node,
                     config_.credit_window_records, clock_.now());
    }
  }
  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(type, enc);
  if (type == tp::MsgType::hello_ack) {
    tp::HelloAck ack;
    ack.incarnation = session.incarnation;
    ack.next_expected_seq = session.next_batch_seq;
    ack.credit = credit;
    tp::encode_hello_ack(ack, enc);
  } else {
    tp::BatchAck ack;
    ack.next_expected_seq = session.next_batch_seq;
    ack.credit = credit;
    tp::encode_batch_ack(ack, enc);
  }
  conn.last_ack_sent_us = monotonic_micros();
  bump(stats_.acks_sent);
  return send_frame(conn, out.view());
}

void Ism::session_sweep() {
  const TimeMicros now = monotonic_micros();

  // Reap peers that have been silent past the idle timeout (an EXS that
  // heartbeats can never trip this while alive).
  if (config_.peer_idle_timeout_us > 0) {
    std::vector<int> idle_fds;
    for (const auto& [fd, conn] : connections_) {
      if (conn.closing) continue;  // already being torn down
      if (now - conn.last_rx_us >= config_.peer_idle_timeout_us) idle_fds.push_back(fd);
    }
    for (int fd : idle_fds) {
      BRISK_LOG_WARN << "reaping idle peer on fd " << fd;
      bump(stats_.idle_disconnects);
      const auto cit = connections_.find(fd);
      flight_.record(sensors::EventKind::session_reaped,
                     cit != connections_.end() ? cit->second.node : 0,
                     static_cast<std::uint64_t>(fd), clock_.now());
      close_connection(fd);
    }
  }

  // Periodic BATCH_ACKs to every live session: they trim the EXS replay
  // buffers, double as an ISM-is-alive signal, and a repeated cursor is
  // what triggers the EXS's go-back-N resend.
  if (resilient()) {
    std::vector<int> failed;
    for (auto& [fd, conn] : connections_) {
      if (!conn.hello_seen || conn.closing) continue;
      TimeMicros period = config_.ack_period_us;
      if (credits_enabled() && config_.credit_replenish_us > 0 &&
          config_.credit_replenish_us < period &&
          conn.version >= tp::kCreditProtocolVersion) {
        // A below-full grant means the node has in-pipeline backlog — its
        // EXS may be window-stalled right now, and the re-grant on the next
        // ack is the only thing that reopens it. Ack faster until the
        // window is back to full.
        const auto sit = sessions_.find(conn.node);
        if (sit != sessions_.end() &&
            sit->second.last_granted_records < config_.credit_window_records) {
          period = config_.credit_replenish_us;
        }
      }
      if (now - conn.last_ack_sent_us < period) continue;
      Status st = send_ack(conn, tp::MsgType::batch_ack);
      if (!st && send_failure_is_fatal(conn, st)) {
        // A genuine socket error, or the outbox has been wedged at its cap
        // past the stall grace period. Acks are cumulative, so a transient
        // buffer_full just skips this ack — the next sweep retries against
        // an outbox the writable pump has meanwhile drained. Only a peer
        // that stays wedged (or a dead socket) is dropped; the EXS's
        // reconnect + replay recovers cleanly.
        BRISK_LOG_WARN << "batch_ack to node " << conn.node
                       << " failed: " << st.to_string();
        failed.push_back(fd);
      }
    }
    for (int fd : failed) close_connection(fd);
  }

  // Reader drained-record rates decay by half every period, so placement
  // follows recent traffic and an old burst cannot pin a reader forever.
  if (!reader_rates_.empty()) {
    constexpr TimeMicros kReaderRateDecayPeriod = 1'000'000;
    if (last_reader_decay_us_ == 0) {
      last_reader_decay_us_ = now;
    } else if (now - last_reader_decay_us_ >= kReaderRateDecayPeriod) {
      last_reader_decay_us_ = now;
      // Evaluate on pre-decay rates: a full period's traffic, not half.
      maybe_migrate_connection(now);
      for (double& rate : reader_rates_) rate *= 0.5;
      for (auto& [fd, conn] : connections_) conn.drained_rate *= 0.5;
    }
  }

  // Quarantine expiry: forget sessions whose node never came back.
  std::vector<NodeId> expired;
  for (const auto& [node, session] : sessions_) {
    if (session.connected) continue;
    if (now - session.disconnected_at >= config_.quarantine_timeout_us) {
      expired.push_back(node);
    }
  }
  for (NodeId node : expired) expire_session(node);
}

void Ism::maybe_migrate_connection(TimeMicros now) {
  if (readers_.size() < 2) return;
  constexpr std::size_t kSustainedImbalancePeriods = 3;
  const ReaderImbalance plan =
      plan_reader_migration(reader_rates_, reader_loads_, /*ratio=*/2.0, /*min_rate=*/1.0);
  if (!plan.imbalanced) {
    imbalance_streak_ = 0;
    return;
  }
  if (++imbalance_streak_ < kSustainedImbalancePeriods) return;
  if (config_.ack_period_us > 0 && last_migration_us_ != 0 &&
      now - last_migration_us_ < config_.ack_period_us) {
    return;
  }
  std::vector<std::pair<int, double>> candidates;
  for (const auto& [fd, conn] : connections_) {
    if (conn.reader_index != plan.from || !conn.lane || conn.closing ||
        conn.migrate_target >= 0) {
      continue;
    }
    candidates.emplace_back(fd, conn.drained_rate);
  }
  if (candidates.size() < 2) return;  // never strip a reader's last connection
  const int fd = pick_connection_to_move(
      candidates, reader_rates_[plan.from] - reader_rates_[plan.to]);
  if (fd < 0) return;
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  it->second.migrate_target = static_cast<int>(plan.to);
  readers_[plan.from]->remove_connection(fd);
  last_migration_us_ = now;
  imbalance_streak_ = 0;
  bump(stats_.reader_migrations);
  flight_.record(sensors::EventKind::reader_migration, it->second.node, plan.to,
                 clock_.now());
  BRISK_LOG_INFO << "migrating fd " << fd << " (node " << it->second.node
                 << ") from reader " << plan.from << " to reader " << plan.to;
}

void Ism::expire_session(NodeId node) {
  const std::size_t drained = pipeline_->remove_node(node);
  bump(stats_.sessions_expired);
  flight_.record(sensors::EventKind::session_expired, node, drained, clock_.now());
  sessions_.erase(node);
  retire_drained_counter(node);
  stats_.records_drained_on_expiry.store(pipeline_->stats().oob_records, std::memory_order_relaxed);
  if (pipeline_->threaded()) {
    BRISK_LOG_INFO << "session for node " << node << " expired (drain queued to shard "
                   << shard_of_node(node, pipeline_->shard_count()) << ")";
  } else {
    BRISK_LOG_INFO << "session for node " << node << " expired (" << drained
                   << " pending records drained)";
  }
}

void Ism::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;

  if (!conn.closing) {
    conn.closing = true;
    if (conn.relay) {
      // A dead relay's last watermark must not gate the merge forever:
      // flush the lane so its queued records drain as the other lanes'
      // watermarks advance. A rejoin resumes it.
      pipeline_->flush_relay_lane(conn.relay_lane);
    }
    if (conn.hello_seen) {
      nodes_.erase(conn.node);
      auto sit = sessions_.find(conn.node);
      if (sit != sessions_.end()) {
        if (conn.saw_bye) {
          // Clean shutdown: forget the cursor but let anything still pending
          // drain through the sorter in timestamp order, merged with the
          // other nodes — only crashed sessions get the out-of-band drain.
          sessions_.erase(sit);
          retire_drained_counter(conn.node);
        } else if (config_.quarantine_timeout_us == 0) {
          expire_session(conn.node);
        } else {
          sit->second.connected = false;
          sit->second.disconnected_at = monotonic_micros();
          sit->second.hole_since = 0;
          flight_.record(sensors::EventKind::session_quarantined, conn.node, 0,
                         clock_.now());
        }
      }
    }
  }

  if (threaded() && conn.lane && !conn.reader_done) {
    // A reader still polls this fd; closing it now would race. Shut the
    // socket down instead — the reader observes EOF, emits its `closed`
    // event, and the drain path re-enters here with reader_done set. The
    // ordering thread's writable-only watch (if any) goes now: a closing
    // connection's outbox is abandoned, not flushed.
    if (conn.want_writable) {
      (void)loop_->unwatch(fd);
      conn.want_writable = false;
    }
    ::shutdown(fd, SHUT_RDWR);
    return;
  }
  finish_close(fd);
}

void Ism::finish_close(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (!threaded()) {
    (void)loop_->unwatch(fd);
  } else if (it->second.want_writable) {
    // Threaded mode only registers this fd here for write readiness.
    (void)loop_->unwatch(fd);
  }
  if (it->second.lane && reader_loads_[it->second.reader_index] > 0) {
    --reader_loads_[it->second.reader_index];
  }
  connections_.erase(it);
  stats_.active_connections.store(connections_.size(), std::memory_order_relaxed);
}

int Ism::node_fd_by_index(std::size_t index) const {
  std::size_t i = 0;
  for (const auto& [node, fd] : nodes_) {
    if (i == index) return fd;
    ++i;
  }
  return -1;
}

Status Ism::run() { return loop_->run(config_.select_timeout_us); }

Status Ism::run_for(TimeMicros duration) {
  const TimeMicros deadline = monotonic_micros() + duration;
  while (monotonic_micros() < deadline && !loop_->stopped()) {
    auto polled = loop_->poll_once(config_.select_timeout_us);
    if (!polled) return polled.status();
  }
  return Status::ok();
}

Status Ism::cycle() {
  auto polled = loop_->poll_once(config_.select_timeout_us);
  if (!polled) return polled.status();
  return Status::ok();
}

Status Ism::drain() {
  drain_ingest();
  // A final snapshot so short-lived runs (and tests) always observe at
  // least one set of metrics records, independent of interval timing.
  if (config_.metrics_interval_us > 0) emit_metrics_snapshot();
  Status st = pipeline_->drain();
  if (!st) return st;
  stats_.records_drained_on_expiry.store(pipeline_->stats().oob_records, std::memory_order_relaxed);
  // drain(), not flush(): sinks with deferred work (the consumer gateway's
  // aggregation windows and TCP fan-out queues) complete it now.
  return output_->drain();
}

// ---- SocketSyncTransport ----------------------------------------------------

std::size_t Ism::SocketSyncTransport::slave_count() const noexcept {
  return ism_.nodes_.size();
}

Result<clk::PollSample> Ism::SocketSyncTransport::poll(std::size_t index) {
  const int fd = ism_.node_fd_by_index(index);
  if (fd < 0) return Status(Errc::not_found, "no such slave");
  auto it = ism_.connections_.find(fd);
  if (it == ism_.connections_.end()) return Status(Errc::not_found, "connection gone");
  Connection& conn = it->second;

  const std::uint32_t request_id = ism_.next_request_id_++;
  if (ism_.next_request_id_ == 0) ism_.next_request_id_ = 1;

  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(tp::MsgType::time_req, enc);
  tp::encode_time_req({request_id}, enc);

  clk::PollSample sample;
  sample.local_send = ism_.clock_.now();
  Status st = ism_.send_frame(conn, out.view());
  if (!st) return st;

  // Wait for the matching TIME_RESP on this connection, dispatching any
  // data frames that precede it in the stream.
  ism_.pending_poll_request_ = request_id;
  ism_.pending_poll_answered_ = false;
  const TimeMicros deadline = monotonic_micros() + ism_.config_.sync_poll_timeout_us;
  Status wait_status = Status::ok();
  while (!ism_.pending_poll_answered_) {
    TimeMicros remaining = deadline - monotonic_micros();
    if (remaining <= 0) {
      wait_status = Status(Errc::timeout, "time poll timed out");
      break;
    }
    // The TIME_REQ (or part of it) may still sit in the outbox if the
    // socket was full; keep pumping, and keep the wait short until it is
    // fully on the wire.
    if (auto pending = ism_.connections_.find(fd); pending != ism_.connections_.end()) {
      Connection& waiting_conn = pending->second;
      if (!waiting_conn.outbox.empty()) {
        Status pump_st = waiting_conn.outbox.pump(waiting_conn.socket);
        if (!pump_st) {
          wait_status = pump_st;
          break;
        }
        // This manual pump may have emptied the outbox; reconcile the
        // writable subscription so no spurious wake lingers.
        ism_.update_write_interest(fd, waiting_conn);
        if (!waiting_conn.outbox.empty() && remaining > 10'000) remaining = 10'000;
      }
    }
    if (ism_.threaded()) {
      // The response arrives through the fd's reader thread; wait on the
      // readers' wakeup pipes and drain lanes as events land.
      std::vector<pollfd> wait_fds;
      wait_fds.reserve(ism_.readers_.size());
      for (auto& reader : ism_.readers_) {
        wait_fds.push_back(pollfd{reader->wakeup_fd(), POLLIN, 0});
      }
      int wait_ms = static_cast<int>(remaining / 1'000);
      if (wait_ms == 0) wait_ms = 1;
      const int ready = ::poll(wait_fds.data(), wait_fds.size(), wait_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        wait_status = Status(Errc::io_error, "poll during time poll");
        break;
      }
      for (auto& reader : ism_.readers_) reader->drain_wakeup();
      ism_.drain_ingest();
    } else {
      fd_set read_set;
      FD_ZERO(&read_set);
      FD_SET(fd, &read_set);
      timeval tv{};
      tv.tv_sec = remaining / 1'000'000;
      tv.tv_usec = remaining % 1'000'000;
      const int ready = ::select(fd + 1, &read_set, nullptr, nullptr, &tv);
      if (ready < 0) {
        if (errno == EINTR) continue;
        wait_status = Status(Errc::io_error, "select during time poll");
        break;
      }
      if (ready == 0) continue;  // recheck deadline
      ism_.on_connection_readable(fd);
    }
    auto alive = ism_.connections_.find(fd);
    if (alive == ism_.connections_.end() || alive->second.closing) {
      wait_status = Status(Errc::closed, "connection died during poll");
      break;
    }
  }
  ism_.pending_poll_request_ = 0;
  if (!wait_status) return wait_status;

  sample.local_recv = ism_.clock_.now();
  sample.remote_time = ism_.pending_poll_slave_time_;
  return sample;
}

Status Ism::SocketSyncTransport::adjust(std::size_t index, TimeMicros delta) {
  const int fd = ism_.node_fd_by_index(index);
  if (fd < 0) return Status(Errc::not_found, "no such slave");
  auto it = ism_.connections_.find(fd);
  if (it == ism_.connections_.end()) return Status(Errc::not_found, "connection gone");
  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(tp::MsgType::adjust, enc);
  tp::encode_adjust({delta}, enc);
  return ism_.send_frame(it->second, out.view());
}

}  // namespace brisk::ism
