// Dynamic on-line sorting with an adaptive time frame (paper Section 3.6).
//
// "Using the synchronized embedded time-stamps, its current time, and a
// user-specified time frame T, the ISM delays each instrumentation data
// record for T time units after its creation. If the ISM detects that two
// successive records from different external sensors have been extracted
// out of order, it increases the time frame; then, it exponentially
// decreases the time frame to reduce the amount of instrumentation data
// delayed in memory. This method of sorting results in a tradeoff between
// the event ordering and latency."
//
// Policy details chosen per the paper's evaluation findings: the raise sets
// T to the observed lateness ("setting the time frame T to be as large as
// the latest late event's lateness is a good strategy"), and the decrease
// is exponential with a configurable half-life ("a small exponent constant
// for reducing T (i.e., a large T's half-life) helps").
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "clock/clock.hpp"
#include "ism/merge_heap.hpp"
#include "metrics/metrics.hpp"

namespace brisk::ism {

/// What to do when more records are delayed in memory than max_pending
/// allows (the "event dropping" box in Fig. 1).
enum class OverflowPolicy {
  emit_early,   // release the oldest records immediately (may emit unordered)
  drop_oldest,  // discard the oldest pending record
  drop_newest,  // discard the incoming record
};

struct SorterConfig {
  TimeMicros initial_frame_us = 10'000;
  TimeMicros min_frame_us = 1'000;
  TimeMicros max_frame_us = 10'000'000;
  /// Half-life of the exponential decrease of T, in seconds.
  double decay_half_life_s = 1.0;
  /// false freezes T at initial_frame_us (the non-adaptive baseline the
  /// sorting experiment compares against).
  bool adaptive = true;
  std::size_t max_pending = 1u << 20;
  OverflowPolicy overflow = OverflowPolicy::emit_early;
};

struct SorterStats {
  std::uint64_t pushed = 0;
  std::uint64_t emitted = 0;
  std::uint64_t out_of_order_emissions = 0;
  std::uint64_t frame_raises = 0;
  std::uint64_t overflow_emits = 0;
  std::uint64_t overflow_drops = 0;
  TimeMicros max_lateness_us = 0;
  /// Sum over emitted records of (emission clock time − record timestamp):
  /// the added latency side of the ordering/latency trade-off.
  std::uint64_t total_delay_us = 0;
  /// Records that arrived already behind the emitted frontier — the delay
  /// window T was too small to reorder them, so they left (or will leave)
  /// the sorter out of order. This is the reordering-loss rate an adaptive
  /// buffer-sizing policy trades against latency.
  std::uint64_t late_drops = 0;
};

class OnlineSorter {
 public:
  /// Receives each released record by value so the sorter can move its
  /// payload out instead of copying (callables taking `const Record&` still
  /// bind). In the sharded pipeline this is the shard's lane-push hook.
  using EmitFn = std::function<void(sensors::Record)>;

  OnlineSorter(const SorterConfig& config, clk::Clock& clock, EmitFn emit);

  /// Queues a record (auto-registers the node's queue on first sight).
  Status push(sensors::Record record);

  /// Releases every record whose delay window has expired and applies the
  /// exponential decrease of T. Call once per ISM loop cycle.
  void service();

  /// Emits everything still pending, in heap order (shutdown path).
  void flush_all();

  /// Removes a node's queue from the merge (session expiry after an EXS
  /// died). Pending records are drained out of band — emitted in queue
  /// order without touching the ordering state, so a dead node's leftovers
  /// cannot raise T or poison the order check for live nodes. Returns the
  /// number of records drained.
  std::size_t remove_node(NodeId node);

  [[nodiscard]] TimeMicros current_frame() const noexcept { return frame_us_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.pending(); }
  [[nodiscard]] const SorterStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SorterConfig& config() const noexcept { return config_; }

  /// Distribution of out-of-order emission lateness (microseconds behind the
  /// emitted frontier). Mergeable across shards; feeds disorder-driven
  /// delay-window policies.
  [[nodiscard]] const metrics::Histogram& disorder() const noexcept { return disorder_; }

  /// Time until the earliest pending record becomes due (for event-loop
  /// timeout computation); negative when something is already due.
  [[nodiscard]] TimeMicros next_due_in();

 private:
  void emit(QueuedRecord queued, bool respect_order_check);
  void decay_frame(TimeMicros now);
  void handle_overflow();

  SorterConfig config_;
  clk::Clock& clock_;
  EmitFn emit_;
  std::map<NodeId, std::unique_ptr<EventQueue>> queues_;
  MergeHeap heap_;
  double frame_us_;  // T; double so the exponential decay is smooth
  TimeMicros last_emitted_ts_ = 0;
  bool emitted_any_ = false;
  TimeMicros last_decay_at_ = 0;
  SorterStats stats_;
  metrics::Histogram disorder_;
};

}  // namespace brisk::ism
