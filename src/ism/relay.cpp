#include "ism/relay.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "common/logging.hpp"
#include "common/time_util.hpp"
#include "sensors/metrics_record.hpp"
#include "tp/wire.hpp"

namespace brisk::ism {

namespace {

tp::LinkConfig make_link_config(const RelayConfig& config) {
  tp::LinkConfig link;
  link.node = config.relay_node;
  link.incarnation = config.incarnation;
  link.capabilities = tp::kCapabilityOrderedStream;
  link.replay_batches = config.replay_batches;
  link.replay_bytes = config.replay_bytes;
  link.pace = config.pace;
  return link;
}

std::uint64_t derive_incarnation() {
  return (static_cast<std::uint64_t>(::getpid()) << 32) ^
         static_cast<std::uint64_t>(monotonic_micros());
}

}  // namespace

Result<std::shared_ptr<RelayEgress>> RelayEgress::connect(const RelayConfig& config,
                                                          clk::Clock& clock) {
  RelayConfig cfg = config;
  if (cfg.incarnation == 0) cfg.incarnation = derive_incarnation();
  auto socket = net::TcpSocket::connect(cfg.parent_host, cfg.parent_port);
  if (!socket) return socket.status();
  Status st = socket.value().set_nodelay(true);
  if (!st) return st;
  auto relay =
      std::shared_ptr<RelayEgress>(new RelayEgress(cfg, clock, std::move(socket).value()));
  st = relay->link_.send_hello();
  if (!st) return st;
  st = relay->socket_.set_nonblocking(true);
  if (!st) return st;
  relay->connected_.store(true, std::memory_order_relaxed);
  relay->thread_ = std::thread([raw = relay.get()] { raw->run(); });
  return relay;
}

RelayEgress::RelayEgress(const RelayConfig& config, clk::Clock& clock, net::TcpSocket socket)
    : config_(config),
      clock_(clock),
      socket_(std::move(socket)),
      outbox_(config.outbox_bytes),
      queue_(config.queue_records),
      link_(make_link_config(config), clock,
            [this](ByteBuffer payload) {
              // Egress thread only. Transport loss is survived by the
              // reconnect schedule; the link must not see it as fatal.
              Status st = send_frame(payload.view());
              if (!st) handle_disconnect();
              return Status::ok();
            }),
      builder_(config.relay_node),
      reconnect_(config.reconnect,
                 static_cast<std::uint64_t>(config.relay_node) ^ config.incarnation),
      aggregator_(config.relay_node, config.metrics_flush_period_us) {}

RelayEgress::~RelayEgress() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

Status RelayEgress::accept(const sensors::Record& record) {
  // Delivery thread. The queue bounds how far the pipeline can run ahead
  // of a slow parent link; spinning here turns into merge backpressure,
  // which in turn shrinks the credit grants this relay hands its own EXSes.
  sensors::Record copy = record;
  while (!queue_.try_push(std::move(copy))) {
    queue_stalls_.fetch_add(1, std::memory_order_relaxed);
    if (stop_.load(std::memory_order_relaxed)) return Status::ok();  // shutting down: drop
    std::this_thread::yield();
  }
  return Status::ok();
}

void RelayEgress::tick(TimeMicros watermark) {
  // The pipeline's release watermark is monotone; a plain store suffices.
  if (watermark != INT64_MIN) tick_watermark_.store(watermark, std::memory_order_relaxed);
}

Status RelayEgress::drain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  const TimeMicros deadline = monotonic_micros() + config_.drain_timeout_us;
  while (!drained_.load(std::memory_order_relaxed) && monotonic_micros() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const bool clean = drained_.load(std::memory_order_relaxed);
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (!clean) {
    return Status(Errc::timeout, "relay egress drain timed out with batches unacked");
  }
  return Status::ok();
}

RelayEgressStats RelayEgress::stats() const {
  RelayEgressStats s;
  s.records_forwarded = records_forwarded_.load(std::memory_order_relaxed);
  s.batches_sent = batches_sent_.load(std::memory_order_relaxed);
  s.queue_stalls = queue_stalls_.load(std::memory_order_relaxed);
  s.sync_polls_answered = sync_polls_answered_.load(std::memory_order_relaxed);
  s.sync_adjustments = sync_adjustments_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(link_mutex_);
  s.metrics_absorbed = aggregator_.absorbed();
  s.aggregated_flushes = aggregator_.flushes();
  s.link = link_.stats();
  return s;
}

void RelayEgress::run() {
  // The poller is the egress thread's wait primitive: readable wakes it for
  // parent acks/sync polls, writable (subscribed only while the outbox has
  // deferred bytes) wakes it the moment the kernel buffer drains. A
  // backend that fails to construct degrades to plain fixed-interval naps.
  poller_ = net::make_poller(config_.poller);
  watch_socket();
  while (!stop_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lk(link_mutex_);
      Status st = cycle();
      if (!st) {
        if (link_.saw_bye()) {
          // Parent shut down cleanly; nothing more will be acked.
          drained_.store(true, std::memory_order_relaxed);
          return;
        }
        handle_disconnect();
      }
    }
    if (poller_ && watched_fd_ >= 0) {
      (void)poller_->poll_once(config_.poll_timeout_us);
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(config_.poll_timeout_us));
    }
  }
}

Status RelayEgress::send_frame(ByteSpan payload) {
  Status st = outbox_.enqueue_frame(payload);
  if (st.code() == Errc::buffer_full) {
    // The outbox cap is the relay's backpressure boundary: block here (the
    // egress thread only — the pipeline keeps filling the SPSC queue) until
    // the parent drains enough or the stall window closes the link.
    const TimeMicros deadline = monotonic_micros() + config_.send_stall_timeout_us;
    if (metrics::FlightRecorder* flight = flight_.load(std::memory_order_acquire)) {
      flight->record(sensors::EventKind::watermark_stall, config_.relay_node,
                     outbox_.pending_bytes(), clock_.now());
    }
    for (;;) {
      Status pump_st = outbox_.pump(socket_);
      if (!pump_st) return pump_st;
      st = outbox_.enqueue_frame(payload);
      if (st.code() != Errc::buffer_full) break;
      if (monotonic_micros() >= deadline) {
        return Status(Errc::timeout, "relay outbox wedged past send stall timeout");
      }
      sleep_micros(1'000);
    }
  }
  if (!st) return st;
  Status pump_st = outbox_.pump(socket_);
  if (pump_st) last_tx_us_ = monotonic_micros();
  update_write_interest();
  return pump_st;
}

void RelayEgress::watch_socket() {
  if (!poller_) return;
  if (watched_fd_ >= 0 && watched_fd_ != socket_.fd()) unwatch_socket();
  if (!socket_.valid() || !connected_.load(std::memory_order_relaxed)) return;
  net::Readiness interest = net::Readiness::readable;
  if (want_writable_) interest = interest | net::Readiness::writable;
  // Wake-only callback: the cycle that follows poll_once() does all the
  // actual socket work under link_mutex_.
  Status st = poller_->watch(socket_.fd(), interest, [](int, net::Readiness) {});
  watched_fd_ = st ? socket_.fd() : -1;
}

void RelayEgress::unwatch_socket() {
  if (poller_ && watched_fd_ >= 0) (void)poller_->unwatch(watched_fd_);
  watched_fd_ = -1;
}

void RelayEgress::update_write_interest() {
  const bool want = !outbox_.empty();
  if (want == want_writable_) return;
  want_writable_ = want;
  watch_socket();
}

Status RelayEgress::cycle() {
  if (!connected_.load(std::memory_order_relaxed)) {
    maybe_reconnect();
    if (!connected_.load(std::memory_order_relaxed)) return Status::ok();
  }
  if (!outbox_.empty()) {
    // The poller woke us because the kernel buffer drained (or the nap
    // expired); flush deferred frames before generating new ones.
    Status st = outbox_.pump(socket_);
    if (!st) return st;
    if (outbox_.empty()) last_tx_us_ = monotonic_micros();
    update_write_interest();
  }
  Status st = pump_socket();
  if (!st) return st;
  // Capture the promise *before* draining the queue: any record this cycle
  // does not see was delivered after this tick value was published, and the
  // pipeline delivers in sorted order, so its timestamp is >= the promise.
  // Reading the tick afterwards could promise over a record that slipped
  // into the queue in between.
  const TimeMicros promised_wm = tick_watermark_.load(std::memory_order_relaxed);
  st = service_queue();
  if (!st) return st;
  const bool draining = drain_requested_.load(std::memory_order_relaxed);
  st = flush_aggregates(draining && queue_.empty());
  if (!st) return st;
  st = maybe_seal(draining && queue_.empty());
  if (!st) return st;
  const TimeMicros now = monotonic_micros();
  if (builder_.empty() && queue_.empty() && config_.idle_watermark_period_us > 0 &&
      now - last_wm_tx_us_ >= config_.idle_watermark_period_us) {
    st = send_idle_watermark(promised_wm);
    if (!st) return st;
  }
  if (config_.heartbeat_period_us > 0 && now - last_tx_us_ >= config_.heartbeat_period_us) {
    st = link_.send_heartbeat();
    if (!st) return st;
  }
  if (draining && !drained_.load(std::memory_order_relaxed) && queue_.empty() &&
      builder_.empty() && outbox_.empty() && link_.replay().empty() &&
      !link_.awaiting_ack()) {
    // Everything shipped and acked (outbox included — a deferred frame must
    // not be overtaken by the goodbye): say goodbye. The parent flushes
    // this relay's merge lane on the BYE, releasing records the watermark
    // still gated.
    ByteBuffer out;
    xdr::Encoder enc(out);
    tp::put_type(tp::MsgType::bye, enc);
    st = send_frame(out.view());
    if (!st) return st;
    drained_.store(true, std::memory_order_relaxed);
  }
  return Status::ok();
}

Status RelayEgress::pump_socket() {
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    auto n = socket_.read_some(MutableByteSpan{chunk, sizeof chunk});
    if (!n) {
      if (n.status().code() == Errc::would_block) return Status::ok();
      return n.status();
    }
    if (n.value() == 0) return Status(Errc::closed, "parent ISM closed connection");
    frame_reader_.feed(ByteSpan{chunk, n.value()});
    for (;;) {
      auto frame = frame_reader_.next();
      if (!frame) return frame.status();
      if (!frame.value().has_value()) break;
      Status st = handle_frame(frame.value()->view());
      if (!st) return st;
    }
  }
}

Status RelayEgress::handle_frame(ByteSpan payload) {
  xdr::Decoder decoder(payload);
  auto type = tp::peek_type(decoder);
  if (!type) return type.status();
  switch (type.value()) {
    case tp::MsgType::time_req: {
      // The parent's clock-sync master polls the relay exactly as it would
      // an EXS; answer with the relay clock plus the parent-relative
      // correction accumulated so far.
      auto req = tp::decode_time_req(decoder);
      if (!req) return req.status();
      ByteBuffer out;
      xdr::Encoder enc(out);
      tp::put_type(tp::MsgType::time_resp, enc);
      tp::encode_time_resp(
          {req.value().request_id,
           clock_.now() + correction_.load(std::memory_order_relaxed)},
          enc);
      sync_polls_answered_.fetch_add(1, std::memory_order_relaxed);
      return send_frame(out.view());
    }
    case tp::MsgType::adjust: {
      auto adj = tp::decode_adjust(decoder);
      if (!adj) return adj.status();
      correction_.fetch_add(adj.value().delta, std::memory_order_relaxed);
      sync_adjustments_.fetch_add(1, std::memory_order_relaxed);
      return Status::ok();
    }
    default:
      if (tp::UpstreamLink::owns_frame(type.value())) {
        return link_.handle_frame(type.value(), decoder);
      }
      return Status(Errc::malformed, "unexpected message type at relay egress");
  }
}

Status RelayEgress::service_queue() {
  sensors::Record record;
  while (queue_.try_pop(record)) {
    // Relay-originated self-instrumentation carries the reserved metrics
    // node id; stamp it with the relay's identity so snapshots from
    // different relays stay distinguishable at the root.
    if (config_.aggregate_metrics && record.node != sensors::kIsmMetricsNodeId &&
        sensors::is_metrics_record(record)) {
      // In-tree aggregation: subtree 0xFF01 records are absorbed here and
      // leave as one merged "agg." snapshot per flush period. The relay's
      // own snapshot (reserved node id, re-stamped below) and 0xFF02/0xFF03
      // records always pass through.
      sensors::apply_time_delta(record, correction_.load(std::memory_order_relaxed));
      aggregator_.absorb(record);
      continue;
    }
    if (record.node == sensors::kIsmMetricsNodeId) record.node = config_.relay_node;
    sensors::apply_time_delta(record, correction_.load(std::memory_order_relaxed));
    if (builder_.empty()) batch_started_at_ = monotonic_micros();
    last_record_ts_ = std::max(last_record_ts_, record.timestamp);
    Status st = builder_.add_record(record);
    if (!st) return st;
    records_forwarded_.fetch_add(1, std::memory_order_relaxed);
    if (builder_.record_count() >= config_.batch_max_records ||
        builder_.payload_bytes() >= config_.batch_max_bytes) {
      st = maybe_seal(true);
      if (!st) return st;
    }
  }
  return Status::ok();
}

Status RelayEgress::flush_aggregates(bool force) {
  if (!config_.aggregate_metrics) return Status::ok();
  const TimeMicros now = monotonic_micros();
  if (force ? !aggregator_.pending() : !aggregator_.due(now)) return Status::ok();
  // The flush rides the sorted stream, so its timestamp must sit at or
  // above everything already promised or shipped — and above every absorbed
  // subtree record, whose values it carries.
  const TimeMicros flush_ts =
      std::max({last_record_ts_, wm_out_, aggregator_.max_absorbed_ts()});
  std::vector<sensors::Record> records = aggregator_.flush(flush_ts, now);
  for (sensors::Record& record : records) {
    if (builder_.empty()) batch_started_at_ = monotonic_micros();
    last_record_ts_ = std::max(last_record_ts_, record.timestamp);
    Status st = builder_.add_record(record);
    if (!st) return st;
    records_forwarded_.fetch_add(1, std::memory_order_relaxed);
    if (builder_.record_count() >= config_.batch_max_records ||
        builder_.payload_bytes() >= config_.batch_max_bytes) {
      st = maybe_seal(true);
      if (!st) return st;
    }
  }
  return Status::ok();
}

Status RelayEgress::maybe_seal(bool force) {
  if (builder_.empty()) return Status::ok();
  const TimeMicros now = monotonic_micros();
  const bool aged = batch_started_at_ != 0 && now - batch_started_at_ >= config_.batch_max_age_us;
  if (!force && !aged && builder_.record_count() < config_.batch_max_records &&
      builder_.payload_bytes() < config_.batch_max_bytes) {
    return Status::ok();
  }
  // The relay output stream is (timestamp, node) sorted, so the last record
  // in this batch bounds everything the relay will ever send after it.
  wm_out_ = std::max(wm_out_, last_record_ts_);
  builder_.set_watermark(wm_out_);
  ByteBuffer payload = builder_.finish();
  batch_started_at_ = 0;
  Status st = link_.ship_batch(std::move(payload));
  if (!st) return st;
  batches_sent_.fetch_add(1, std::memory_order_relaxed);
  last_wm_tx_us_ = monotonic_micros();
  return Status::ok();
}

Status RelayEgress::send_idle_watermark(TimeMicros tick_wm) {
  // The pipeline's release watermark is the newest timestamp it has
  // delivered; by sortedness every future record is >= it. Until the relay
  // has released anything there is nothing safe to promise.
  if (tick_wm == INT64_MIN) return Status::ok();
  const TimeMicros candidate = tick_wm + correction_.load(std::memory_order_relaxed);
  if (candidate <= wm_out_) {
    last_wm_tx_us_ = monotonic_micros();  // nothing new to promise; re-arm
    return Status::ok();
  }
  wm_out_ = candidate;
  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(tp::MsgType::relay_watermark, enc);
  tp::encode_relay_watermark({config_.relay_node, wm_out_}, enc);
  Status st = send_frame(out.view());
  if (st) last_wm_tx_us_ = monotonic_micros();
  return st;
}

void RelayEgress::handle_disconnect() {
  if (!connected_.load(std::memory_order_relaxed)) return;
  connected_.store(false, std::memory_order_relaxed);
  unwatch_socket();
  socket_.close();
  frame_reader_ = net::FrameReader{};
  // Deferred frames die with the connection; the replay buffer re-ships
  // everything that matters after the reconnect handshake.
  outbox_ = net::FrameSendBuffer(config_.outbox_bytes);
  want_writable_ = false;
  link_.on_disconnect();
  reconnect_.arm(monotonic_micros());
  BRISK_LOG_WARN << "relay " << config_.relay_node
                 << ": lost parent ISM connection, entering reconnect";
}

void RelayEgress::maybe_reconnect() {
  if (!reconnect_.due(monotonic_micros())) return;
  auto socket = net::TcpSocket::connect(config_.parent_host, config_.parent_port);
  if (socket) {
    net::TcpSocket fresh = std::move(socket).value();
    Status st = fresh.set_nodelay(true);
    if (st) st = fresh.set_nonblocking(true);
    if (st) {
      socket_ = std::move(fresh);
      connected_.store(true, std::memory_order_relaxed);
      watch_socket();
      reconnect_.record_success();
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      if (metrics::FlightRecorder* flight = flight_.load(std::memory_order_acquire)) {
        flight->record(sensors::EventKind::reconnect, config_.relay_node,
                       reconnects_.load(std::memory_order_relaxed), clock_.now());
      }
      // Watermarks are cumulative promises; after replay the parent's lane
      // watermark catches back up with the next batch or idle frame.
      BRISK_LOG_INFO << "relay " << config_.relay_node << ": reconnected to parent ISM";
      (void)link_.on_reconnected();
      return;
    }
  }
  if (!reconnect_.record_failure(monotonic_micros())) {
    BRISK_LOG_ERROR << "relay " << config_.relay_node << ": giving up after "
                    << reconnect_.failed_attempts() << " reconnect attempts";
    stop_.store(true, std::memory_order_relaxed);
  }
}

}  // namespace brisk::ism
