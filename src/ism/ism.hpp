// The instrumentation system manager (ISM): BRISK's central daemon.
//
// Fig. 1 pipeline, all in one single-threaded select() loop:
//   batches arrive per-EXS (TCP order preserved) → batch queue →
//   CRE switch (hash matching, tachyon repair) → per-EXS event queues →
//   timestamp heap / on-line sorting → output fan-out (shared memory,
//   PICL trace file, visual objects), with the clock-sync master loop
//   polling the EXSes between cycles.
#pragma once

#include <map>
#include <memory>

#include "clock/sync_service.hpp"
#include "ism/cre_matcher.hpp"
#include "ism/drop_policy.hpp"
#include "ism/online_sorter.hpp"
#include "ism/output.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "tp/batch.hpp"

namespace brisk::ism {

struct IsmConfig {
  std::uint16_t port = 0;  // 0 = ephemeral, see Ism::port()
  /// select() timeout of the main loop (the latency-floor knob).
  TimeMicros select_timeout_us = 40'000;
  SorterConfig sorter;
  CreConfig cre;
  bool enable_sync = true;
  clk::SyncServiceConfig sync;
  /// How long the master waits for one TIME_RESP.
  TimeMicros sync_poll_timeout_us = 250'000;
  /// Per-connection admission rate (token bucket), the "data flow control"
  /// of Fig. 1: records beyond the budget are dropped at the ISM ingress
  /// and accounted, so a runaway node cannot monopolize IS resources.
  /// 0 disables flow control.
  double flow_control_rate_per_sec = 0.0;
  double flow_control_burst = 10'000.0;
};

struct IsmStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t active_connections = 0;
  std::uint64_t batches_received = 0;
  std::uint64_t records_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t ring_drops_reported = 0;  // sum over nodes of EXS drop counters
  std::uint64_t flow_control_drops = 0;   // records rejected by the token bucket
  /// Batch sequence gaps. The TCP stream makes these impossible in a
  /// healthy deployment; a nonzero count means frames were lost or an EXS
  /// restarted mid-session.
  std::uint64_t batch_seq_gaps = 0;
};

class Ism {
 public:
  /// Binds the listener and wires the pipeline. `output` receives sorted
  /// records; `clock` is the ISM clock (SystemClock in production).
  static Result<std::unique_ptr<Ism>> start(const IsmConfig& config, clk::Clock& clock,
                                            std::shared_ptr<OutputSink> output);

  ~Ism();
  Ism(const Ism&) = delete;
  Ism& operator=(const Ism&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// Runs the select() loop until stop().
  Status run();
  /// Runs for at most `duration` of monotonic time (tests and benches).
  Status run_for(TimeMicros duration);
  /// One loop cycle (accept/read/idle work) with the configured timeout.
  Status cycle();
  void stop() noexcept { loop_.stop(); }

  /// Emits everything still delayed and flushes sinks (shutdown path).
  Status drain();

  [[nodiscard]] const IsmStats& stats() const noexcept { return stats_; }
  [[nodiscard]] OnlineSorter& sorter() noexcept { return sorter_; }
  [[nodiscard]] CreMatcher& cre() noexcept { return cre_; }
  [[nodiscard]] clk::SyncService* sync() noexcept { return sync_service_.get(); }
  [[nodiscard]] std::size_t connected_nodes() const noexcept { return nodes_.size(); }

 private:
  struct Connection {
    net::TcpSocket socket;
    net::FrameReader reader;
    NodeId node = 0;
    bool hello_seen = false;
    std::uint64_t ring_dropped_total = 0;
    std::uint32_t next_batch_seq = 0;
    std::unique_ptr<TokenBucket> flow_control;  // null when disabled
  };

  /// The master side of clock sync over the live connections.
  class SocketSyncTransport final : public clk::SyncTransport {
   public:
    explicit SocketSyncTransport(Ism& ism) : ism_(ism) {}
    [[nodiscard]] std::size_t slave_count() const noexcept override;
    Result<clk::PollSample> poll(std::size_t index) override;
    Status adjust(std::size_t index, TimeMicros delta) override;

   private:
    Ism& ism_;
  };

  Ism(const IsmConfig& config, clk::Clock& clock, std::shared_ptr<OutputSink> output,
      net::TcpListener listener);

  void on_listener_readable();
  void on_connection_readable(int fd);
  Status dispatch_frame(Connection& conn, ByteSpan payload);
  void handle_batch(Connection& conn, tp::Batch batch);
  void route_record(sensors::Record record);
  void idle_work();
  void close_connection(int fd);
  /// fd of the index-th connected node (ordered by node id), or -1.
  int node_fd_by_index(std::size_t index) const;

  IsmConfig config_;
  clk::Clock& clock_;
  std::shared_ptr<OutputSink> output_;
  net::TcpListener listener_;
  net::EventLoop loop_;
  std::map<int, Connection> connections_;
  std::map<NodeId, int> nodes_;  // node id → fd
  CreMatcher cre_;
  OnlineSorter sorter_;
  SocketSyncTransport sync_transport_;
  std::unique_ptr<clk::SyncService> sync_service_;
  IsmStats stats_;
  std::uint32_t next_request_id_ = 1;
  // Set while a sync poll is waiting for this (request id, value) pair.
  std::uint32_t pending_poll_request_ = 0;
  bool pending_poll_answered_ = false;
  TimeMicros pending_poll_slave_time_ = 0;
  std::vector<sensors::Record> route_scratch_;
};

}  // namespace brisk::ism
