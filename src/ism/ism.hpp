// The instrumentation system manager (ISM): BRISK's central daemon.
//
// Fig. 1 pipeline:
//   batches arrive per-EXS (TCP order preserved) → batch queue →
//   per-EXS event queues → timestamp heap / on-line sorting (sharded by
//   node group, k-way merged — see pipeline.hpp) → CRE switch (hash
//   matching, tachyon repair) → output fan-out (shared memory, PICL trace
//   file, visual objects), with the clock-sync master loop polling the
//   EXSes between cycles.
//
// Two ingest modes share this pipeline:
//  * inline (reader_threads == 0, the paper-faithful default): one thread
//    does everything — a single poller loop accepts, reads, decodes,
//    matches, sorts, and emits.
//  * threaded (reader_threads > 0): accept and all ordering-side semantics
//    stay on this thread, while socket reads and batch decoding move to a
//    pool of reader threads (see ingest.hpp). Each connection is pinned to
//    one reader and hands events over a bounded SPSC lane, so per-node
//    FIFO — and therefore the sorted output — is unchanged.
#pragma once

#include <atomic>
#include <map>
#include <memory>

#include "clock/sync_service.hpp"
#include "ism/drop_policy.hpp"
#include "ism/ingest.hpp"
#include "ism/output.hpp"
#include "ism/pipeline.hpp"
#include "metrics/flight_recorder.hpp"
#include "metrics/latency.hpp"
#include "metrics/metrics.hpp"
#include "net/faulty_socket.hpp"
#include "net/frame.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "tp/batch.hpp"

namespace brisk::ism {

struct IsmConfig {
  std::uint16_t port = 0;  // 0 = ephemeral, see Ism::port()
  /// Readiness-wait timeout of the main loop (the latency-floor knob —
  /// "waiting select system calls, which can delay an event record for up
  /// to 40 ms").
  TimeMicros select_timeout_us = 40'000;
  /// Poller backend for the main loop and any reader threads.
  net::PollerBackend poller = net::PollerBackend::select;
  /// Readiness-driven outbox pumping: a connection subscribes to
  /// Readiness::writable only while its outbox holds deferred bytes (the
  /// same want-writable toggling the consumer gateway does), so idle cycles
  /// do no per-connection outbox work at all. false restores the legacy
  /// walk-every-connection pump on every idle cycle (bench comparison).
  bool readiness_pump = true;
  /// How long a connection may sit with its outbox at the cap
  /// (Errc::buffer_full on sends) before it is reaped. An overloaded but
  /// alive peer that starts reading again within the grace period keeps its
  /// connection; only a peer that stays wedged past it is torn down.
  /// 0 = reap on the first buffer_full (the old behaviour).
  TimeMicros outbox_stall_timeout_us = 2'000'000;
  /// Per-connection outbound frame buffer cap (acks/sync frames deferred by
  /// a full kernel send buffer). Tests shrink it to exercise the stall path
  /// without megabytes of traffic.
  std::size_t outbox_bytes = net::kDefaultSendBufferBytes;
  /// SO_SNDBUF for accepted connections; 0 keeps the kernel default. Tiny
  /// values force the kernel buffer to fill quickly (stall-path tests).
  int sndbuf_bytes = 0;
  /// Reader threads for ingest. 0 = inline single-threaded mode.
  std::size_t reader_threads = 0;
  /// Per-connection SPSC lane depth (events) in threaded mode.
  std::size_t ingest_queue_frames = 1024;
  /// Ordering shards (see pipeline.hpp). 1 = the single inline sorter; N > 1
  /// runs N shard workers plus a k-way merger thread.
  std::size_t sorter_shards = 1;
  /// Depth (records) of each ordering shard's SPSC lanes in sharded mode.
  std::size_t shard_queue_records = 4096;
  /// Period of the one-line periodic stats log (--stats-interval); 0 = off.
  /// The line is composed from the same metrics snapshot the metrics
  /// records are built from.
  TimeMicros stats_interval_us = 0;
  /// Period of self-instrumentation snapshots (--metrics-interval): every
  /// interval the ISM renders its metrics registry into reserved-sensor-id
  /// records and submits them through the ordering pipeline, so they reach
  /// every registered sink like any other record. 0 = off.
  TimeMicros metrics_interval_us = 0;
  SorterConfig sorter;
  CreConfig cre;
  bool enable_sync = true;
  clk::SyncServiceConfig sync;
  /// How long the master waits for one TIME_RESP.
  TimeMicros sync_poll_timeout_us = 250'000;
  /// Per-connection admission rate (token bucket), the "data flow control"
  /// of Fig. 1: records beyond the budget are dropped at the ISM ingress
  /// and accounted, so a runaway node cannot monopolize IS resources.
  /// 0 disables flow control.
  double flow_control_rate_per_sec = 0.0;
  double flow_control_burst = 10'000.0;

  // --- session resilience ----------------------------------------------------
  /// Drop a connection whose peer has sent nothing (not even a heartbeat)
  /// for this long: catches EXSes that died without the kernel closing the
  /// socket. 0 disables idle reaping.
  TimeMicros peer_idle_timeout_us = 30'000'000;
  /// How long a disconnected node's session (batch_seq cursor + pending
  /// sorter queue) is kept for a rejoin. On expiry the queue is drained out
  /// of band and the session forgotten, so a later reconnect starts clean.
  /// 0 expires immediately on disconnect.
  TimeMicros quarantine_timeout_us = 5'000'000;
  /// BATCH_ACK cadence towards each connected EXS. Acks drive the EXS's
  /// replay-buffer trimming and its go-back-N resend on loss. 0 disables
  /// acks and with them the dedupe/hole handling (legacy v1-style gap
  /// accounting applies instead).
  TimeMicros ack_period_us = 200'000;
  /// A batch-sequence hole older than this is declared lost (counted in
  /// batch_seq_gaps) and the cursor jumps forward — the EXS evicted the
  /// missing batches from its replay buffer and can never resend them.
  TimeMicros gap_skip_timeout_us = 1'000'000;

  // --- credit-based flow control ---------------------------------------------
  /// Per-connection record window granted on every ack to v3+ peers
  /// (--ism-credit-records). The grant is the configured window minus the
  /// node's in-pipeline backlog, so a slow pipeline shrinks the window and
  /// the EXS pacer parks batches instead of blasting into a blocked socket.
  /// 0 disables credit grants entirely (acks stay v2-shaped on the wire).
  std::uint32_t credit_window_records = 0;
  /// Byte window granted alongside (--ism-credit-bytes); 0 = uncapped.
  std::uint64_t credit_window_bytes = 0;
  /// Ack cadence towards a session whose last grant was below the full
  /// window: the pipeline is draining its backlog and a prompt re-grant is
  /// what reopens the EXS's window (--credit-replenish-us). Clamped up to
  /// ack_period_us; 0 keeps the plain ack cadence.
  TimeMicros credit_replenish_us = 20'000;
};

/// A point-in-time snapshot of the ISM's counters. Ism::stats() builds one
/// from the internal atomic cells, so tests and monitoring threads can read
/// a coherent copy while the server threads keep counting.
struct IsmStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t active_connections = 0;
  std::uint64_t batches_received = 0;
  std::uint64_t records_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t ring_drops_reported = 0;  // sum over nodes of EXS drop counters
  std::uint64_t flow_control_drops = 0;   // records rejected by the token bucket
  /// Times a reader thread paused a socket because its SPSC lane was full
  /// (threaded ingest backpressure; the TCP window pushes back to the EXS).
  std::uint64_t ingest_stalls = 0;
  /// Batch sequence gaps. The TCP stream makes these impossible in a
  /// healthy deployment; a nonzero count means batches were lost for good —
  /// the EXS restarted without replay, or evicted them from its replay
  /// buffer before they could be resent.
  std::uint64_t batch_seq_gaps = 0;
  // --- session resilience ----------------------------------------------------
  std::uint64_t rejoins = 0;                   // same-incarnation reconnects resumed
  std::uint64_t duplicate_batches_dropped = 0; // replayed batches already applied
  std::uint64_t out_of_order_batches_dropped = 0;  // above-cursor batches awaiting resend
  std::uint64_t idle_disconnects = 0;          // peers reaped by the idle timeout
  std::uint64_t sessions_expired = 0;          // quarantined sessions forgotten
  std::uint64_t records_drained_on_expiry = 0; // out-of-band emissions at expiry
  std::uint64_t acks_sent = 0;                 // HELLO_ACK + BATCH_ACK frames
  std::uint64_t heartbeats_received = 0;
  // --- credit-based flow control ---------------------------------------------
  std::uint64_t credit_grants_sent = 0;        // acks that carried a grant
  std::uint64_t zero_window_grants = 0;        // grants that closed the window
  // --- reader-pool rebalancing -----------------------------------------------
  std::uint64_t reader_migrations = 0;         // connections moved between readers
};

class Ism {
 public:
  /// Binds the listener and wires the pipeline. `output` receives sorted
  /// records; `clock` is the ISM clock (SystemClock in production).
  static Result<std::unique_ptr<Ism>> start(const IsmConfig& config, clk::Clock& clock,
                                            std::shared_ptr<Sink> output);

  ~Ism();
  Ism(const Ism&) = delete;
  Ism& operator=(const Ism&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// Runs the poll loop until stop().
  Status run();
  /// Runs for at most `duration` of monotonic time (tests and benches).
  Status run_for(TimeMicros duration);
  /// One loop cycle (accept/read/idle work) with the configured timeout.
  Status cycle();
  void stop() noexcept { loop_->stop(); }

  /// Emits everything still delayed and flushes sinks (shutdown path).
  Status drain();

  /// Injects faults into every frame the ISM sends an EXS (acks, clock-sync
  /// messages) — ack-loss drills for the replay path. The frame index seen
  /// by the policy counts all outbound frames across all connections.
  void set_fault_policy(net::FaultPolicy policy) { fault_.set_policy(std::move(policy)); }
  [[nodiscard]] const net::FaultStats& fault_stats() const noexcept { return fault_.stats(); }

  /// Snapshot of the counters (relaxed atomic loads — safe to call from
  /// any thread while the server runs).
  [[nodiscard]] IsmStats stats() const noexcept;
  /// The self-instrumentation registry. Additional collectors may be
  /// registered before records flow; snapshots are taken on the ordering
  /// thread.
  [[nodiscard]] metrics::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// The diagnostic flight recorder: session lifecycle, flow-control
  /// pressure, drops, and migrations land here, are dumped on SIGUSR1 /
  /// fatal exit, and ship as 0xFF03 records with each metrics snapshot.
  /// The gateway and relay egress share this ring (BriskManager wires it).
  [[nodiscard]] metrics::FlightRecorder& flight() noexcept { return flight_; }
  [[nodiscard]] OrderingPipeline& pipeline() noexcept { return *pipeline_; }
  [[nodiscard]] const OrderingPipeline& pipeline() const noexcept { return *pipeline_; }
  /// Sorter counters aggregated over all ordering shards.
  [[nodiscard]] SorterStats sorter_stats() const { return pipeline_->sorter_stats(); }
  [[nodiscard]] CreMatcher& cre() noexcept { return pipeline_->cre(); }
  [[nodiscard]] clk::SyncService* sync() noexcept { return sync_service_.get(); }
  [[nodiscard]] std::size_t connected_nodes() const noexcept { return nodes_.size(); }
  /// Sessions tracked (live + quarantined); for tests and diagnostics.
  [[nodiscard]] std::size_t session_count() const noexcept { return sessions_.size(); }
  [[nodiscard]] const char* poller_backend() const noexcept { return loop_->backend_name(); }

 private:
  struct Connection {
    net::TcpSocket socket;
    net::FrameReader reader;  // inline mode only; readers own it otherwise
    /// Outbound frame buffer: acks/sync frames are enqueued whole and
    /// drained with write_some(), so a full kernel send buffer defers the
    /// frame instead of tearing it mid-write (the EXS-side equivalent is
    /// the replay buffer + reconnect).
    net::FrameSendBuffer outbox;
    /// Whether this connection currently subscribes to Readiness::writable
    /// (readiness_pump mode): toggled on when the outbox defers bytes,
    /// off once it drains — same pattern as the gateway's subscriptions.
    bool want_writable = false;
    /// Monotonic time the outbox first rejected a frame (Errc::buffer_full);
    /// 0 while the peer keeps up. A stall past outbox_stall_timeout_us is
    /// what reaps the connection, not the first rejection.
    TimeMicros outbox_full_since = 0;
    NodeId node = 0;
    /// Negotiated protocol version from the peer's HELLO; grants are only
    /// appended to acks for peers that understand them (v3+).
    std::uint32_t version = tp::kProtocolVersion;
    bool hello_seen = false;
    bool saw_bye = false;             // clean shutdown: expire the session now
    TimeMicros last_rx_us = 0;        // monotonic, any inbound bytes
    TimeMicros last_ack_sent_us = 0;  // monotonic
    std::unique_ptr<TokenBucket> flow_control;  // null when disabled
    // --- threaded ingest -----------------------------------------------------
    std::shared_ptr<IngestLane> lane;  // null in inline mode
    std::size_t reader_index = 0;      // which ReaderThread owns the fd
    /// Ordering thread decided to close but the reader still polls the fd:
    /// socket is shutdown(2), waiting for the reader's `closed` event.
    bool closing = false;
    /// The reader emitted its `closed` event; the fd is safe to close.
    bool reader_done = false;
    // --- federation ----------------------------------------------------------
    /// Peer declared kCapabilityOrderedStream in its hello: it is a relay
    /// whose batches are already (timestamp, node)-sorted and watermarked.
    bool relay = false;
    std::size_t relay_lane = 0;  // valid only when relay
    // --- reader-pool rebalancing ---------------------------------------------
    /// Decayed per-connection drained-record rate (ordering thread only);
    /// halved in session_sweep alongside the per-reader rates. This is what
    /// pick_connection_to_move ranks.
    double drained_rate = 0.0;
    /// Destination reader of an in-flight migration, or -1. Set when the
    /// `remove` command goes to the old reader; consumed by the `released`
    /// event, which re-adds the fd at the target.
    int migrate_target = -1;
  };

  /// Per-node state that must survive the TCP connection: the batch_seq
  /// cursor (dedupe across reconnects) and the quarantine bookkeeping. One
  /// entry per node that ever said hello, until its quarantine expires.
  struct NodeSession {
    std::uint64_t incarnation = 0;
    std::uint32_t next_batch_seq = 0;  // cumulative cursor, also the ack value
    std::uint64_t ring_dropped_total = 0;
    bool connected = false;
    TimeMicros disconnected_at = 0;      // monotonic, valid when !connected
    TimeMicros hole_since = 0;           // monotonic, 0 = no open seq hole
    std::uint32_t lowest_pending_seq = 0;  // smallest seq offered above cursor
    // --- credit-based flow control -------------------------------------------
    /// Records admitted into the ordering pipeline (ordering thread only).
    std::uint64_t records_admitted = 0;
    /// Records that left the pipeline through the sink; bumped on the merger
    /// thread in sharded mode, hence the atomic cell. admitted − drained is
    /// the node's in-pipeline backlog, which shrinks its next grant.
    std::shared_ptr<std::atomic<std::uint64_t>> records_drained;
    std::uint32_t last_granted_records = 0;  // most recent grant's window
    // --- federation ----------------------------------------------------------
    /// Ordered-ingress lane in the pipeline (relay sessions only). Lanes are
    /// append-only in the pipeline, so the index stays valid across
    /// reconnects of the same incarnation; an incarnation reset allocates a
    /// fresh lane (the old one was flushed at disconnect and stays empty).
    bool has_relay_lane = false;
    std::size_t relay_lane = 0;
  };

  /// The master side of clock sync over the live connections.
  class SocketSyncTransport final : public clk::SyncTransport {
   public:
    explicit SocketSyncTransport(Ism& ism) : ism_(ism) {}
    [[nodiscard]] std::size_t slave_count() const noexcept override;
    Result<clk::PollSample> poll(std::size_t index) override;
    Status adjust(std::size_t index, TimeMicros delta) override;

   private:
    Ism& ism_;
  };

  Ism(const IsmConfig& config, clk::Clock& clock, std::shared_ptr<Sink> output,
      net::TcpListener listener);

  [[nodiscard]] bool threaded() const noexcept { return !readers_.empty(); }

  void on_listener_readable();
  void on_connection_readable(int fd);
  /// Writable-readiness event: drains the connection's outbox and drops the
  /// writable subscription once it is empty.
  void on_connection_writable(int fd);
  /// Installs the poller registration for an inline-mode connection with
  /// the interest matching its current want_writable state.
  Status watch_connection(int fd);
  /// Reconciles the connection's poller subscription with its outbox state
  /// (readiness_pump mode; no-op otherwise). Inline mode upserts the
  /// combined readable[|writable] interest on the main loop; threaded mode
  /// adds/removes a writable-only watch (the reader threads own readable).
  void update_write_interest(int fd, Connection& conn);
  /// Classifies a failed send/pump: true for genuine socket errors and for
  /// buffer_full stalls that have outlived the grace period; false for a
  /// buffer_full blip on an otherwise-alive peer.
  [[nodiscard]] bool send_failure_is_fatal(Connection& conn, const Status& st);
  Status dispatch_frame(Connection& conn, ByteSpan payload);
  void handle_batch(Connection& conn, tp::Batch batch);
  /// Ordered-ingress: a relay's pre-sorted batch goes through the same
  /// batch_seq dedupe cursor, then straight into its pipeline lane —
  /// bypassing the sorter shards. Origin node ids are preserved.
  void handle_relay_batch(Connection& conn, tp::RelayBatch batch);
  /// Applies the dedupe/hole policy to a batch sequence number. Returns
  /// true when the batch's records should be admitted into the pipeline.
  bool admit_batch_seq(const Connection& conn, NodeSession& session, std::uint32_t seq);
  void route_record(sensors::Record record);
  /// Sink delivery of a traced record: stamps sink_delivery, feeds the
  /// stage-pair latency histograms, strips the annotation off the data
  /// record, and emits the span list as a trace record behind it.
  void deliver_traced(const sensors::Record& record);
  void idle_work();
  /// Idle reaping, quarantine expiry, and periodic BATCH_ACKs.
  void session_sweep();
  /// Reader-pool rebalancing: once the decayed drained-rate imbalance has
  /// been sustained for kSustainedImbalancePeriods decay periods, moves one
  /// connection (at most one per ack period) from the busiest reader to the
  /// idlest. Called from the decay tick with pre-decay rates.
  void maybe_migrate_connection(TimeMicros now);
  void expire_session(NodeId node);
  Status send_ack(Connection& conn, tp::MsgType type);
  Status send_frame(Connection& conn, ByteSpan payload);
  // --- credit-based flow control ---------------------------------------------
  [[nodiscard]] bool credits_enabled() const noexcept {
    return config_.credit_window_records > 0 && resilient();
  }
  /// The grant appended to an ack: configured window minus the node's
  /// in-pipeline backlog (clamped at zero — never a negative window).
  [[nodiscard]] tp::CreditGrant build_credit_grant(NodeSession& session) const noexcept;
  /// Pipeline-sink hook: counts a delivered record against its node's
  /// drained counter (any pipeline thread; lock-free COW map lookup).
  void note_record_drained(NodeId node) noexcept;
  /// Ordering-thread-only copy-on-write updates of the drained-counter map.
  void publish_drained_counter(NodeId node,
                              std::shared_ptr<std::atomic<std::uint64_t>> cell);
  void retire_drained_counter(NodeId node);
  /// Tears down a connection. In threaded mode with the reader still
  /// polling the fd, this only shutdown(2)s the socket and waits for the
  /// reader's `closed` event (see ingest.hpp's fd ownership protocol).
  void close_connection(int fd);
  void finish_close(int fd);
  /// Flushes pending outbound bytes on every connection; a connection whose
  /// outbox fails (peer stopped reading past the cap, or a real I/O error)
  /// is torn down — the EXS's reconnect + replay covers the loss.
  void pump_outboxes();
  /// Emits the periodic one-line stats log when --stats-interval is on.
  /// Composed from the metrics snapshot (the log is just another consumer).
  void maybe_log_stats();
  /// Wires the ism.* metrics collector into the registry.
  void register_metrics();
  /// Periodic self-instrumentation snapshot (--metrics-interval).
  void maybe_emit_metrics();
  /// Renders the registry into metrics records and submits them through
  /// the ordering pipeline (ordering thread only).
  void emit_metrics_snapshot();
  // --- threaded ingest -------------------------------------------------------
  /// Drains every connection's lane into the pipeline; resumes stalled fds.
  void drain_ingest();
  void process_ingest_event(int fd, IngestEvent event);
  /// fd of the index-th connected node (ordered by node id), or -1.
  int node_fd_by_index(std::size_t index) const;
  [[nodiscard]] bool resilient() const noexcept { return config_.ack_period_us > 0; }

  IsmConfig config_;
  clk::Clock& clock_;
  std::shared_ptr<Sink> output_;
  net::TcpListener listener_;
  std::unique_ptr<net::Poller> loop_;
  std::vector<std::unique_ptr<ReaderThread>> readers_;
  /// Live connection count per reader (tie-breaker for accept placement).
  std::vector<std::size_t> reader_loads_;
  /// Decayed drained-record load per reader: bumped as batches drain from a
  /// reader's lanes, halved periodically in session_sweep(). Accept-time
  /// placement follows actual record traffic, not connection counts — four
  /// idle connections weigh less than one firehose.
  std::vector<double> reader_rates_;
  TimeMicros last_reader_decay_us_ = 0;  // monotonic
  /// Consecutive decay periods the pool evaluated as imbalanced; a
  /// migration needs kSustainedImbalancePeriods of them in a row.
  std::size_t imbalance_streak_ = 0;
  TimeMicros last_migration_us_ = 0;  // monotonic; rate-limits to 1/ack period
  std::map<int, Connection> connections_;
  std::map<NodeId, int> nodes_;  // node id → fd (live connections only)
  std::map<NodeId, NodeSession> sessions_;
  std::unique_ptr<OrderingPipeline> pipeline_;
  /// Set by the pipeline's tachyon hook (merger thread when sharded);
  /// consumed on the ordering thread, which owns the sync service.
  std::atomic<bool> extra_sync_requested_{false};
  TimeMicros last_stats_log_us_ = 0;     // monotonic
  TimeMicros last_metrics_emit_us_ = 0;  // monotonic
  SequenceNo metrics_sequence_ = 0;      // running seq of emitted metrics records
  metrics::FlightRecorder flight_{"ism"};
  /// How far emit_metrics_snapshot has drained flight_ into 0xFF03 records.
  std::uint64_t flight_cursor_ = 0;
  /// Running seq of emitted trace records. Atomic: sink delivery happens on
  /// the merger thread in sharded mode and the ordering thread otherwise
  /// (and on the ordering thread again during drain()).
  std::atomic<std::uint64_t> trace_sequence_{0};
  metrics::MetricsRegistry metrics_;
  std::unique_ptr<metrics::LatencyRecorder> latency_;
  SocketSyncTransport sync_transport_;
  std::unique_ptr<clk::SyncService> sync_service_;
  /// The live counter cells behind IsmStats. The server threads write them;
  /// test/monitor threads snapshot via stats() — every cell is a relaxed
  /// atomic so those cross-thread reads are race-free (TSan-clean).
  struct Counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> active_connections{0};
    std::atomic<std::uint64_t> batches_received{0};
    std::atomic<std::uint64_t> records_received{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> ring_drops_reported{0};
    std::atomic<std::uint64_t> flow_control_drops{0};
    std::atomic<std::uint64_t> ingest_stalls{0};
    std::atomic<std::uint64_t> batch_seq_gaps{0};
    std::atomic<std::uint64_t> rejoins{0};
    std::atomic<std::uint64_t> duplicate_batches_dropped{0};
    std::atomic<std::uint64_t> out_of_order_batches_dropped{0};
    std::atomic<std::uint64_t> idle_disconnects{0};
    std::atomic<std::uint64_t> sessions_expired{0};
    std::atomic<std::uint64_t> records_drained_on_expiry{0};
    std::atomic<std::uint64_t> acks_sent{0};
    std::atomic<std::uint64_t> heartbeats_received{0};
    std::atomic<std::uint64_t> credit_grants_sent{0};
    std::atomic<std::uint64_t> zero_window_grants{0};
    std::atomic<std::uint64_t> reader_migrations{0};
  };
  Counters stats_;
  /// node → drained-record cell, for the pipeline-sink counting hook. Read
  /// lock-free on pipeline threads via atomic shared_ptr loads; replaced
  /// copy-on-write on the ordering thread (single writer). Null while no
  /// session has credits.
  using DrainedMap = std::map<NodeId, std::shared_ptr<std::atomic<std::uint64_t>>>;
  std::shared_ptr<const DrainedMap> drained_counters_;
  net::FaultySocket fault_;  // all ISM→EXS frames route through this
  std::uint32_t next_request_id_ = 1;
  // Set while a sync poll is waiting for this (request id, value) pair.
  std::uint32_t pending_poll_request_ = 0;
  bool pending_poll_answered_ = false;
  TimeMicros pending_poll_slave_time_ = 0;
};

}  // namespace brisk::ism
