// ISM output stage: where sorted records go.
//
// "The default output mode of the ISM is writing to a memory [buffer],
// which is then read by instrumentation data consumer tools. Besides
// writing to memory, the BRISK ISM may log instrumentation data to trace
// files in the PICL ASCII format, or it may pass instrumentation data to a
// list of CORBA-enabled visual objects." OutputSink is the abstraction;
// FanOut delivers to any combination.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "picl/picl_writer.hpp"
#include "sensors/record.hpp"
#include "sensors/record_codec.hpp"
#include "shm/ring_buffer.hpp"

namespace brisk::ism {

class OutputSink {
 public:
  virtual ~OutputSink() = default;
  virtual Status deliver(const sensors::Record& record) = 0;
  virtual Status flush() { return Status::ok(); }
};

/// Default output: native-encoded records into a shared-memory ring that
/// consumer tools read ("using the same binary structure used by the NOTICE
/// macros"). Node ids are preserved by prefixing each payload with the
/// 4-byte node id.
class ShmOutputSink final : public OutputSink {
 public:
  explicit ShmOutputSink(shm::RingBuffer ring) : ring_(ring) {}

  Status deliver(const sensors::Record& record) override;

  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  shm::RingBuffer ring_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

/// PICL ASCII trace file output.
class PiclFileSink final : public OutputSink {
 public:
  explicit PiclFileSink(picl::PiclWriter writer) : writer_(std::move(writer)) {}

  Status deliver(const sensors::Record& record) override { return writer_.write(record); }
  Status flush() override { return writer_.flush(); }

  [[nodiscard]] picl::PiclWriter& writer() noexcept { return writer_; }

 private:
  picl::PiclWriter writer_;
};

/// In-process consumer callback (tests, embedded consumers).
class CallbackSink final : public OutputSink {
 public:
  using Fn = std::function<void(const sensors::Record&)>;
  explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}

  Status deliver(const sensors::Record& record) override {
    fn_(record);
    return Status::ok();
  }

 private:
  Fn fn_;
};

/// Delivers to every attached sink; a failing sink is reported but does not
/// stop delivery to the others.
class FanOut final : public OutputSink {
 public:
  void add(std::shared_ptr<OutputSink> sink) { sinks_.push_back(std::move(sink)); }

  Status deliver(const sensors::Record& record) override;
  Status flush() override;

  [[nodiscard]] std::size_t sink_count() const noexcept { return sinks_.size(); }

 private:
  std::vector<std::shared_ptr<OutputSink>> sinks_;
};

/// Encodes a record (with its node id prefix) as placed in the output ring.
Result<ByteBuffer> encode_output_record(const sensors::Record& record);
/// Decodes one output-ring payload back into a record.
Result<sensors::Record> decode_output_record(ByteSpan bytes);

}  // namespace brisk::ism
