// ISM output stage: where sorted records go.
//
// "The default output mode of the ISM is writing to a memory [buffer],
// which is then read by instrumentation data consumer tools. Besides
// writing to memory, the BRISK ISM may log instrumentation data to trace
// files in the PICL ASCII format, or it may pass instrumentation data to a
// list of CORBA-enabled visual objects." All three output paths implement
// the one Sink interface; SinkRegistry holds the registered set and fans
// every sorted record out to it.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "picl/picl_writer.hpp"
#include "sensors/record.hpp"
#include "sensors/record_codec.hpp"
#include "shm/ring_buffer.hpp"

namespace brisk::ism {

/// One output path for sorted records. accept() takes each record as the
/// sorter releases it; flush() is called on idle cycles and at shutdown.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual Status accept(const sensors::Record& record) = 0;
  virtual Status flush() { return Status::ok(); }
  /// Advance notice of the merge's release watermark (the timestamp below
  /// which no further record will be delivered). Called from the ordering
  /// thread on idle cycles; time-windowed sinks (the consumer gateway's
  /// aggregation subscriptions) use it to close windows during lulls
  /// without risking a late record landing behind a closed window.
  virtual void tick(TimeMicros watermark) { (void)watermark; }
  /// Shutdown path, called once after the pipeline has drained: complete
  /// all deferred work (close aggregation windows, flush fan-out queues to
  /// connected consumers) before the process exits. Defaults to flush().
  virtual Status drain() { return flush(); }
  /// Stable identifier for diagnostics and registry lookups.
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Default output: native-encoded records into a shared-memory ring that
/// consumer tools read ("using the same binary structure used by the NOTICE
/// macros"). Node ids are preserved by prefixing each payload with the
/// 4-byte node id.
class ShmSink final : public Sink {
 public:
  explicit ShmSink(shm::RingBuffer ring) : ring_(ring) {}

  Status accept(const sensors::Record& record) override;
  [[nodiscard]] const char* name() const noexcept override { return "shm"; }

  // accept() runs on the merger thread when the pipeline is sharded while
  // stats readers poll from the ordering thread, so the counters are atomic.
  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  shm::RingBuffer ring_;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// PICL ASCII trace file output.
class PiclFileSink final : public Sink {
 public:
  explicit PiclFileSink(picl::PiclWriter writer) : writer_(std::move(writer)) {}

  Status accept(const sensors::Record& record) override { return writer_.write(record); }
  Status flush() override { return writer_.flush(); }
  [[nodiscard]] const char* name() const noexcept override { return "picl"; }

  [[nodiscard]] picl::PiclWriter& writer() noexcept { return writer_; }

 private:
  picl::PiclWriter writer_;
};

/// In-process consumer callback (tests, embedded consumers).
class CallbackSink final : public Sink {
 public:
  using Fn = std::function<void(const sensors::Record&)>;
  explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}

  Status accept(const sensors::Record& record) override {
    fn_(record);
    return Status::ok();
  }
  [[nodiscard]] const char* name() const noexcept override { return "callback"; }

 private:
  Fn fn_;
};

/// The registered set of output paths. Itself a Sink, so the pipeline talks
/// to exactly one object no matter how many outputs are attached. A failing
/// sink is reported but does not stop delivery to the others.
///
/// Mutation is safe against concurrent delivery: add()/remove() swap in a
/// new copy of the sink list under a mutex while accept()/flush()/tick()
/// read an atomic snapshot — the merger thread never iterates a vector a
/// remove() is erasing from. A removed sink may still receive the records
/// of one in-flight accept() (delivery holds the old snapshot alive), so
/// removal is "no new records", not a synchronous barrier.
///
/// New code should prefer the ConsumerGateway (ism/gateway.hpp), which
/// layers per-subscriber filters, bounded queues, and TCP fan-out over the
/// same contract; this registry remains for simple all-records fan-out.
class SinkRegistry final : public Sink {
 public:
  /// Registers under the sink's own name(). Fails on a duplicate name.
  Status add(std::shared_ptr<Sink> sink);
  /// Registers under an explicit name (several sinks of one kind).
  Status add(std::string name, std::shared_ptr<Sink> sink);
  /// Unregisters; false if no sink has that name.
  bool remove(const std::string& name);
  [[nodiscard]] std::shared_ptr<Sink> find(const std::string& name) const;

  Status accept(const sensors::Record& record) override;
  Status flush() override;
  void tick(TimeMicros watermark) override;
  Status drain() override;
  [[nodiscard]] const char* name() const noexcept override { return "registry"; }

  [[nodiscard]] std::size_t sink_count() const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Entry {
    std::string name;
    std::shared_ptr<Sink> sink;
  };
  using EntryList = std::vector<Entry>;  // delivery order = registration order

  /// The delivery threads' view: lock-free atomic load of the current list.
  [[nodiscard]] std::shared_ptr<const EntryList> snapshot() const {
    return std::atomic_load_explicit(&sinks_, std::memory_order_acquire);
  }

  mutable std::mutex mutation_mutex_;  // serializes add()/remove()
  std::shared_ptr<const EntryList> sinks_ = std::make_shared<EntryList>();
};

/// Encodes a record (with its node id prefix) as placed in the output ring.
Result<ByteBuffer> encode_output_record(const sensors::Record& record);
/// Decodes one output-ring payload back into a record.
Result<sensors::Record> decode_output_record(ByteSpan bytes);

}  // namespace brisk::ism
