// TokenBucket and DropAccounting are header-only; see drop_policy.hpp.
#include "ism/drop_policy.hpp"
