#include "ism/relay_aggregator.hpp"

#include <algorithm>

namespace brisk::ism {

RelayAggregator::RelayAggregator(NodeId node, TimeMicros flush_period_us)
    : node_(node), flush_period_us_(flush_period_us) {}

void RelayAggregator::absorb(const sensors::Record& record) {
  auto point = sensors::decode_metrics_record(record);
  if (!point) {
    ++malformed_;
    return;
  }
  Series& series = series_[point.value().name];
  series.kind = point.value().kind;
  series.latest[record.node] = point.value().value;
  TimeMicros& node_wm = nodes_[record.node];
  node_wm = std::max(node_wm, record.timestamp);
  max_absorbed_ts_ = std::max(max_absorbed_ts_, record.timestamp);
  ++absorbed_;
  absorbed_since_flush_ = true;
}

bool RelayAggregator::due(TimeMicros now_monotonic) const noexcept {
  if (!absorbed_since_flush_ || flush_period_us_ <= 0) return false;
  return now_monotonic - last_flush_monotonic_ >= flush_period_us_;
}

std::vector<sensors::Record> RelayAggregator::flush(TimeMicros flush_ts,
                                                    TimeMicros now_monotonic) {
  last_flush_monotonic_ = now_monotonic;
  absorbed_since_flush_ = false;
  std::vector<sensors::Record> out;
  if (nodes_.empty()) return out;
  out.reserve(series_.size() + nodes_.size() + 1);
  out.push_back(sensors::make_metrics_record(node_, sequence_++, flush_ts, "agg.nodes",
                                             nodes_.size(), sensors::MetricKind::gauge));
  for (const auto& [node, watermark] : nodes_) {
    out.push_back(sensors::make_metrics_record(
        node_, sequence_++, flush_ts, "agg.node." + std::to_string(node) + ".watermark_us",
        static_cast<std::uint64_t>(watermark), sensors::MetricKind::gauge));
  }
  for (const auto& [name, series] : series_) {
    std::uint64_t sum = 0;
    for (const auto& [node, value] : series.latest) sum += value;
    out.push_back(sensors::make_metrics_record(node_, sequence_++, flush_ts, "agg." + name,
                                               sum, series.kind));
  }
  ++flushes_;
  return out;
}

}  // namespace brisk::ism
