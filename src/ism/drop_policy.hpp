// Flow control and drop accounting.
//
// Fig. 1 shows both a data-flow and a control-flow path between the EXS and
// the ISM, and an "event dropping" stage at the ISM: when the target system
// out-produces the IS, BRISK sheds load explicitly and accounts for it
// rather than stalling the target ("large volumes of instrumentation data
// [may] monopolize IS resources"). TokenBucket is the rate limiter the ISM
// can apply per connection; DropAccounting aggregates every place a record
// can be lost so consumers can see a complete loss picture.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace brisk::ism {

/// Classic token bucket over the microsecond clock: `rate_per_sec` tokens
/// accrue per second up to `burst`; each admitted record spends one.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst) noexcept
      : rate_per_sec_(rate_per_sec), burst_(burst), tokens_(burst) {}

  /// True (and spends a token) if a record may pass at time `now`.
  bool admit(TimeMicros now) noexcept {
    refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  [[nodiscard]] double tokens() const noexcept { return tokens_; }

 private:
  void refill(TimeMicros now) noexcept {
    if (!primed_) {
      primed_ = true;
      last_refill_ = now;
      return;
    }
    const TimeMicros dt = now - last_refill_;
    if (dt <= 0) return;
    last_refill_ = now;
    tokens_ += rate_per_sec_ * static_cast<double>(dt) / 1e6;
    if (tokens_ > burst_) tokens_ = burst_;
  }

  double rate_per_sec_;
  double burst_;
  double tokens_;
  TimeMicros last_refill_ = 0;
  bool primed_ = false;
};

/// Where records can be lost between the NOTICE call and the consumer.
struct DropAccounting {
  std::uint64_t ring_drops = 0;       // sensor ring full (reported by EXSes)
  std::uint64_t flow_control_drops = 0;  // ISM token bucket rejected
  std::uint64_t sorter_drops = 0;     // sorter overflow policy discarded
  std::uint64_t cre_timeouts = 0;     // held consequences released unmatched

  [[nodiscard]] std::uint64_t total() const noexcept {
    return ring_drops + flow_control_drops + sorter_drops + cre_timeouts;
  }
};

}  // namespace brisk::ism
