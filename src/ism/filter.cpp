#include "ism/filter.hpp"

#include <algorithm>
#include <cstdlib>

namespace brisk::ism {

namespace {

// splitmix64 finalizer, same mixer family as the trace-id hash.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool in_ranges(const std::vector<SubscriptionFilter::Range>& ranges,
               std::uint64_t value) noexcept {
  if (ranges.empty()) return true;
  for (const auto& range : ranges) {
    if (value >= range.lo && value <= range.hi) return true;
  }
  return false;
}

void append_ranges(std::string& out, std::string_view key,
                   const std::vector<SubscriptionFilter::Range>& ranges) {
  if (ranges.empty()) return;
  if (!out.empty()) out.push_back(',');
  out.append(key);
  out.push_back('=');
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(std::to_string(ranges[i].lo));
    if (ranges[i].hi != ranges[i].lo) {
      out.push_back('-');
      out.append(std::to_string(ranges[i].hi));
    }
  }
}

Result<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return Status(Errc::invalid_argument, "empty number in filter");
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status(Errc::invalid_argument,
                    "bad number '" + std::string(text) + "' in filter");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status(Errc::invalid_argument,
                    "number '" + std::string(text) + "' out of range");
    }
    value = value * 10 + digit;
  }
  return value;
}

Result<SubscriptionFilter::Range> parse_range(std::string_view text,
                                              std::uint64_t max_value) {
  SubscriptionFilter::Range range;
  const std::size_t dash = text.find('-');
  if (dash == std::string_view::npos) {
    auto value = parse_u64(text);
    if (!value) return value.status();
    range.lo = range.hi = value.value();
  } else {
    auto lo = parse_u64(text.substr(0, dash));
    if (!lo) return lo.status();
    auto hi = parse_u64(text.substr(dash + 1));
    if (!hi) return hi.status();
    range.lo = lo.value();
    range.hi = hi.value();
    if (range.hi < range.lo) {
      return Status(Errc::invalid_argument,
                    "inverted range '" + std::string(text) + "' in filter");
    }
  }
  if (range.hi > max_value) {
    return Status(Errc::invalid_argument,
                  "id range '" + std::string(text) + "' exceeds the id space");
  }
  return range;
}

}  // namespace

bool SubscriptionFilter::matches(const sensors::Record& record) const noexcept {
  if (!in_ranges(nodes, record.node)) return false;
  if (!in_ranges(sensors, record.sensor)) return false;
  if (sample_every > 1) {
    // The TP wire does not carry per-record sequence numbers, so every
    // EXS-originated record reaches the ISM with sequence == 0 — a hash of
    // (node, sensor, sequence) alone would keep or drop a whole stream.
    // Folding the timestamp in keeps the decision a pure function of
    // record content (identical runs sample identical records, every
    // subscriber with the same N sees the same subset) while varying per
    // record.
    const std::uint64_t id =
        mix64((static_cast<std::uint64_t>(record.node) << 32) ^
              (static_cast<std::uint64_t>(record.sensor) << 48) ^
              record.sequence ^
              mix64(static_cast<std::uint64_t>(record.timestamp)));
    return id % sample_every == 0;
  }
  return true;
}

std::string SubscriptionFilter::describe() const {
  std::string out;
  append_ranges(out, "node", nodes);
  append_ranges(out, "sensor", sensors);
  if (sample_every > 1) {
    if (!out.empty()) out.push_back(',');
    out.append("sample=");
    out.append(std::to_string(sample_every));
  }
  return out;
}

Result<SubscriptionFilter> SubscriptionFilter::parse(std::string_view spec) {
  SubscriptionFilter filter;
  enum class Clause { none, node, sensor, sample };
  Clause clause = Clause::none;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding spaces so "node=1, sensor=2" parses.
    while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
    while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
    if (token.empty()) continue;
    std::string_view value = token;
    const std::size_t eq = token.find('=');
    if (eq != std::string_view::npos) {
      const std::string_view key = token.substr(0, eq);
      value = token.substr(eq + 1);
      if (key == "node") {
        clause = Clause::node;
      } else if (key == "sensor") {
        clause = Clause::sensor;
      } else if (key == "sample") {
        clause = Clause::sample;
      } else {
        return Status(Errc::invalid_argument,
                      "unknown filter key '" + std::string(key) + "'");
      }
    } else if (clause == Clause::none) {
      return Status(Errc::invalid_argument,
                    "filter clause '" + std::string(token) + "' has no key=");
    }
    switch (clause) {
      case Clause::node: {
        auto range = parse_range(value, UINT32_MAX);
        if (!range) return range.status();
        filter.nodes.push_back(range.value());
        break;
      }
      case Clause::sensor: {
        auto range = parse_range(value, UINT32_MAX);
        if (!range) return range.status();
        filter.sensors.push_back(range.value());
        break;
      }
      case Clause::sample: {
        auto every = parse_u64(value);
        if (!every) return every.status();
        if (every.value() == 0 || every.value() > UINT32_MAX) {
          return Status(Errc::invalid_argument, "sample=N needs 1 <= N <= 2^32-1");
        }
        filter.sample_every = static_cast<std::uint32_t>(every.value());
        break;
      }
      case Clause::none:
        break;
    }
  }
  auto sort_ranges = [](std::vector<Range>& ranges) {
    std::sort(ranges.begin(), ranges.end(), [](const Range& a, const Range& b) {
      return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
    });
  };
  sort_ranges(filter.nodes);
  sort_ranges(filter.sensors);
  return filter;
}

}  // namespace brisk::ism
