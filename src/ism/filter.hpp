// Subscription filter predicates: what a consumer-gateway subscriber asks
// to see. Filters are pushed down to the ISM and evaluated *before* fan-out
// (ACME-style query pushdown), so a subscriber interested in one node costs
// the gateway one predicate test per record, not one delivered copy.
//
// A filter is the conjunction of three optional clauses:
//   * a node-id set (expressed as inclusive ranges; empty = every node),
//   * a sensor-id range set (empty = every sensor),
//   * 1-in-N rate sampling (deterministic — hash-based on (node, sensor,
//     sequence, timestamp); the timestamp matters because the TP wire
//     carries no per-record sequence numbers, so EXS-originated records
//     all arrive with sequence == 0. A sampled stream is reproducible
//     across identical runs and identical on every same-N subscriber).
//
// The textual spec syntax (used by `brisk_consume --filter` and carried
// verbatim in SUBSCRIBE frames) is comma-separated clauses; values after a
// `key=` continue that clause until the next `key=`:
//   node=1,2,5-8,sensor=100-199,sample=16
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "sensors/record.hpp"

namespace brisk::ism {

struct SubscriptionFilter {
  /// Inclusive [lo, hi] id range; a single id is lo == hi.
  struct Range {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool operator==(const Range&) const noexcept = default;
  };

  /// Node-id ranges; empty = all nodes.
  std::vector<Range> nodes;
  /// Sensor-id ranges; empty = all sensors.
  std::vector<Range> sensors;
  /// Keep one record in N (deterministic hash sampling); 1 = keep all.
  std::uint32_t sample_every = 1;

  [[nodiscard]] bool matches(const sensors::Record& record) const noexcept;
  /// True when every record matches (the gateway skips predicate tests).
  [[nodiscard]] bool pass_all() const noexcept {
    return nodes.empty() && sensors.empty() && sample_every <= 1;
  }

  /// Canonical spec string ("" for a pass-all filter). parse() of the
  /// result reproduces the filter.
  [[nodiscard]] std::string describe() const;

  /// Parses the spec syntax above. An empty spec is the pass-all filter.
  static Result<SubscriptionFilter> parse(std::string_view spec);

  bool operator==(const SubscriptionFilter&) const noexcept = default;
};

}  // namespace brisk::ism
