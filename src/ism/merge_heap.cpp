#include "ism/merge_heap.hpp"

#include <utility>

namespace brisk::ism {

Status MergeHeap::add_queue(EventQueue* queue) {
  if (queue == nullptr) return Status(Errc::invalid_argument, "null queue");
  auto [it, inserted] = queues_.try_emplace(queue->node(), queue);
  if (!inserted) return Status(Errc::already_exists, "queue for node already registered");
  in_heap_[queue->node()] = false;
  notify_pushed(queue->node());
  return Status::ok();
}

Status MergeHeap::remove_queue(NodeId node) {
  if (queues_.erase(node) == 0) return Status(Errc::not_found, "no queue for node");
  in_heap_.erase(node);
  // Lazy removal: rebuild the heap without the node's entry.
  std::vector<Entry> keep;
  keep.reserve(heap_.size());
  for (const Entry& e : heap_) {
    if (e.queue->node() != node) keep.push_back(e);
  }
  heap_.clear();
  for (const Entry& e : keep) heap_push(e);
  return Status::ok();
}

void MergeHeap::notify_pushed(NodeId node) {
  auto it = queues_.find(node);
  if (it == queues_.end() || it->second->empty()) return;
  auto flag = in_heap_.find(node);
  if (flag == in_heap_.end() || flag->second) return;
  heap_push({it->second->front().record.timestamp, it->second});
  flag->second = true;
}

TimeMicros MergeHeap::min_timestamp() const {
  return heap_.empty() ? 0 : heap_.front().timestamp;
}

Result<QueuedRecord> MergeHeap::pop_min() {
  if (heap_.empty()) return Status(Errc::buffer_empty, "merge heap empty");
  Entry top = heap_pop();
  in_heap_[top.queue->node()] = false;
  QueuedRecord record = top.queue->pop();
  // Re-arm the queue's entry with its new head.
  notify_pushed(top.queue->node());
  return record;
}

std::size_t MergeHeap::pending() const noexcept {
  std::size_t total = 0;
  for (const auto& [node, queue] : queues_) total += queue->size();
  return total;
}

void MergeHeap::heap_push(Entry entry) {
  heap_.push_back(entry);
  sift_up(heap_.size() - 1);
}

MergeHeap::Entry MergeHeap::heap_pop() {
  Entry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

void MergeHeap::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!(heap_[parent] > heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void MergeHeap::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < n && heap_[smallest] > heap_[left]) smallest = left;
    if (right < n && heap_[smallest] > heap_[right]) smallest = right;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace brisk::ism
