// Causally-related event (CRE) matching and tachyon repair (Sections 3.2 &
// 3.6 of the paper).
//
// Events marked X_REASON / X_CONSEQ with the same user-supplied identifier
// are causally related: the consequence must never be ordered before its
// reason. The ISM matches them through a hash table:
//  * a consequence with no reason yet seen is held in memory until the
//    reason arrives — bounded by a timeout, "because its peer may have been
//    dropped";
//  * when a reason arrives and a waiting consequence has a *smaller*
//    timestamp (a tachyon — the clocks were clearly out of sync), the
//    consequence's timestamp "is overridden by a larger value" and "an
//    extra round of the clock synchronization algorithm is invoked
//    immediately";
//  * a consequence that arrives after its reason with a smaller timestamp
//    is repaired the same way.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "clock/clock.hpp"
#include "sensors/record.hpp"

namespace brisk::ism {

struct CreConfig {
  /// How long a causally-marked record (reason entry or held consequence)
  /// may stay in memory.
  TimeMicros hold_timeout_us = 1'000'000;
  /// Timestamp override: conseq.ts = reason.ts + this margin.
  TimeMicros repair_margin_us = 1;
  /// Federation: a relay ISM must not match locally — a consequence whose
  /// reason lives behind a *different* relay would be held for the full
  /// timeout and released unrepaired, and the root (which sees both) would
  /// then disagree with a flat deployment. With forward_only set the
  /// matcher passes causally-marked records straight through, still
  /// timestamp-sorted, and matching happens exactly once, at the root.
  bool forward_only = false;
};

struct CreStats {
  std::uint64_t reasons_seen = 0;
  std::uint64_t conseqs_seen = 0;
  std::uint64_t matched = 0;
  std::uint64_t tachyons_repaired = 0;
  std::uint64_t conseqs_held = 0;          // consequences that had to wait
  std::uint64_t hold_timeouts = 0;         // released by timeout, unmatched
  std::uint64_t extra_sync_requests = 0;
};

class CreMatcher {
 public:
  /// `on_tachyon` is the hook into the sync service (request_extra_round).
  CreMatcher(const CreConfig& config, clk::Clock& clock, std::function<void()> on_tachyon);

  /// Routes one record through the matcher. Appends to `out` every record
  /// ready to continue into the on-line sorter (the input itself, possibly
  /// repaired, and/or previously held consequences it released). Records
  /// with no causal marking pass straight through.
  void process(sensors::Record record, std::vector<sensors::Record>& out);

  /// Purges timed-out state; appends timed-out held consequences to `out`
  /// (released unrepaired — better late than silently dropped).
  void service(std::vector<sensors::Record>& out);

  [[nodiscard]] std::size_t held_count() const noexcept { return waiting_conseqs_.size(); }
  [[nodiscard]] std::size_t reason_table_size() const noexcept { return reasons_.size(); }
  [[nodiscard]] const CreStats& stats() const noexcept { return stats_; }

 private:
  struct ReasonEntry {
    TimeMicros timestamp = 0;
    TimeMicros seen_at = 0;
  };
  struct HeldConseq {
    sensors::Record record;
    TimeMicros held_at = 0;
  };

  void repair(sensors::Record& conseq, TimeMicros reason_ts);

  CreConfig config_;
  clk::Clock& clock_;
  std::function<void()> on_tachyon_;
  std::unordered_map<CausalId, ReasonEntry> reasons_;
  std::unordered_multimap<CausalId, HeldConseq> waiting_conseqs_;
  CreStats stats_;
};

}  // namespace brisk::ism
