// In-tree metrics aggregation for the relay tier (--relay-aggregate-metrics).
//
// With a fleet of relays, every EXS and every lower-tier ISM ships its full
// 0xFF01 metrics snapshot upstream each interval, and the root ingests the
// whole fleet's self-instrumentation record by record. The aggregator lets a
// relay absorb the 0xFF01 records of its *subtree* and forward one merged
// snapshot per flush period instead, shrinking root ingest for
// observability-heavy fleets.
//
// Merge semantics are uniform per (series, node): absorb() keeps the latest
// value per emitting node, and a flush emits the sum of those latest values
// per series. Because snapshots carry cumulative state, this yields exactly
// the per-kind semantics the snapshot model implies:
//  * counters — cumulative per node, so sum-of-latest is the subtree total;
//  * gauges   — last value per node, summed into a subtree level (a
//    per-node breakdown would re-inflate the record count the feature
//    exists to remove);
//  * histogram buckets — each ".le_<bound>" bucket sample is its own
//    series, so sum-of-latest merges subtree histograms bucket-wise, which
//    is the mergeable representation metrics::Histogram defines.
//
// Aggregated series carry the "agg." prefix so they can never collide with
// the relay's *own* snapshot identity (relay-local records use the reserved
// metrics node re-stamped to the relay node id — those pass through
// untouched, and both appear at the root). Each flush is tagged with the
// subtree population ("agg.nodes") and a per-node staleness watermark
// ("agg.node.<id>.watermark_us", the newest record timestamp absorbed from
// that node), so a consumer can tell a quiet node from a dead one without
// seeing its raw records.
//
// Single-threaded: owned and driven by the relay egress thread.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sensors/metrics_record.hpp"

namespace brisk::ism {

class RelayAggregator {
 public:
  /// `node` stamps the flushed records (the relay's identity toward its
  /// parent); `flush_period_us` is the forwarding cadence (<= 0 means only
  /// explicit/drain flushes).
  RelayAggregator(NodeId node, TimeMicros flush_period_us);

  /// Absorbs one subtree metrics record into the aggregation state.
  /// `record.timestamp` must already be in the upstream timebase. Malformed
  /// metrics records are counted and dropped.
  void absorb(const sensors::Record& record);

  /// True once a flush period has elapsed (monotonic clock) with absorbed
  /// state to show for it.
  [[nodiscard]] bool due(TimeMicros now_monotonic) const noexcept;

  /// Emits the merged subtree snapshot as 0xFF01 records stamped
  /// `flush_ts`. State is cumulative — per-node latest values survive the
  /// flush, so counters stay monotone across snapshots. Returns an empty
  /// vector when nothing was ever absorbed.
  [[nodiscard]] std::vector<sensors::Record> flush(TimeMicros flush_ts,
                                                   TimeMicros now_monotonic);

  /// Newest record timestamp absorbed so far (upstream timebase); INT64_MIN
  /// before the first absorb. A flush timestamp must be >= this to keep the
  /// relay's sorted-stream promise.
  [[nodiscard]] TimeMicros max_absorbed_ts() const noexcept { return max_absorbed_ts_; }

  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  /// True while records absorbed since the last flush are waiting to ship.
  [[nodiscard]] bool pending() const noexcept { return absorbed_since_flush_; }
  [[nodiscard]] std::uint64_t absorbed() const noexcept { return absorbed_; }
  [[nodiscard]] std::uint64_t malformed() const noexcept { return malformed_; }
  [[nodiscard]] std::uint64_t flushes() const noexcept { return flushes_; }

 private:
  struct Series {
    sensors::MetricKind kind = sensors::MetricKind::counter;
    /// Latest cumulative value per emitting node.
    std::map<NodeId, std::uint64_t> latest;
  };

  NodeId node_;
  TimeMicros flush_period_us_;
  std::map<std::string, Series> series_;
  /// Newest absorbed record timestamp per node — the staleness watermark.
  std::map<NodeId, TimeMicros> nodes_;
  TimeMicros max_absorbed_ts_ = INT64_MIN;
  TimeMicros last_flush_monotonic_ = 0;
  bool absorbed_since_flush_ = false;
  SequenceNo sequence_ = 0;
  std::uint64_t absorbed_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace brisk::ism
