// The sharded ordering pipeline: per-group on-line sorters feeding a final
// k-way merge.
//
// PR 2 took socket reads and XDR decode off the ordering thread; this stage
// takes the ordering work itself off it. The paper's OLS design — one FIFO
// per EXS merged under an adaptive delay window T — decomposes naturally by
// producer, so the pipeline splits the monolithic sorter into two explicit
// stages:
//
//  * N *shard workers*. Each shard owns a disjoint set of EXS sessions
//    (node-id hash, fixed at hello) and runs a full private OnlineSorter:
//    per-EXS FIFOs, merge heap, and its own adaptive frame T. A shard emits
//    a timestamp-ordered stream into a bounded SPSC lane and publishes a
//    monotone *watermark* — a promise that, barring genuinely late records
//    (which already count as out-of-order and raise T), its future in-order
//    emissions sit above `now - T`.
//  * one *merger*. A k-way heap merge across the shard lanes, keyed
//    (timestamp, node) exactly like the per-shard merge heaps, so the merged
//    stream is byte-identical to what one global sorter would produce. A
//    record is released only once every empty lane's watermark has passed
//    it; an empty lane therefore stalls the merge by at most one shard poll
//    cycle, in the spirit of out-of-order compensation buffers with cheap
//    cross-group causality bounds.
//
// Causally-related-event matching stays GLOBAL and moves behind the merge:
// X_REASON/X_CONSEQ pairs may span shards, so the CreMatcher sees the
// merged, timestamp-ordered stream. A tachyon consequence (smaller
// timestamp than its reason) surfaces from the merge *before* its reason,
// is held by the matcher, and is released — timestamp repaired — right
// after the reason passes; sink delivery and tachyon-driven extra sync
// rounds both happen here, once, globally.
//
// shards == 1 (the default) is the paper-faithful mode: no worker threads,
// no lanes — the single sorter, the CRE pass, and sink delivery all run
// inline on the ordering thread, preserving PR 2's threading model exactly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "clock/clock.hpp"
#include "common/spsc_queue.hpp"
#include "ism/cre_matcher.hpp"
#include "ism/online_sorter.hpp"

namespace brisk::ism {

struct PipelineConfig {
  /// Ordering shards. 1 = inline single sorter (paper mode); N > 1 starts
  /// N shard worker threads plus one merger thread.
  std::size_t shards = 1;
  /// Depth (records) of each shard's input and output SPSC lane.
  std::size_t shard_queue_records = 4096;
  /// Idle wait of the shard and merger loops; bounds the extra latency a
  /// quiet shard's watermark can impose on the merge.
  TimeMicros poll_timeout_us = 10'000;
  SorterConfig sorter;
  CreConfig cre;
};

struct PipelineStats {
  std::uint64_t submitted = 0;         // records entering the pipeline
  std::uint64_t merged = 0;            // records through the k-way merge
  /// Merged record below the merge high-water timestamp: a shard violated
  /// its watermark (a genuinely late record — the shard's own order check
  /// already raised its T for it).
  std::uint64_t merge_inversions = 0;
  /// Release runs through the k-way merge: each run amortises one watermark
  /// scan over merged/merge_runs records (see merge_step).
  std::uint64_t merge_runs = 0;
  std::uint64_t submit_stalls = 0;     // input lane full, ordering thread spun
  /// Records drained out of band (session expiry), bypassing the merge.
  std::uint64_t oob_records = 0;
};

/// Shard owning `node`'s sessions: a multiplicative hash so striding node
/// ids spread evenly. Stable across runs — it defines which sorter a node's
/// records FIFO through, and with it the deterministic merge order.
std::size_t shard_of_node(NodeId node, std::size_t shards) noexcept;

class OrderingPipeline {
 public:
  /// Sorted + CRE-ordered records leave through `sink`; `flush` is the
  /// sink-flush hook (called from the merger thread when sharded, from
  /// service() inline); `on_tachyon` must be thread-safe — it fires on the
  /// merger thread when shards > 1.
  using SinkFn = std::function<void(const sensors::Record&)>;
  using FlushFn = std::function<void()>;
  using TachyonFn = std::function<void()>;

  OrderingPipeline(const PipelineConfig& config, clk::Clock& clock, SinkFn sink,
                   FlushFn flush, TachyonFn on_tachyon);
  ~OrderingPipeline();
  OrderingPipeline(const OrderingPipeline&) = delete;
  OrderingPipeline& operator=(const OrderingPipeline&) = delete;

  /// Routes one admitted record to its shard (ordering thread only). A full
  /// shard lane spins (counted in submit_stalls) — the shard workers always
  /// drain, so this is bounded backpressure, not deadlock.
  Status submit(sensors::Record record);

  /// Ordering-thread idle hook. Inline mode runs the sorter, the CRE pass,
  /// and the sink flush here; sharded mode is a no-op (the workers own it).
  void service();

  /// Session expiry: drain `node`'s pending records out of band — they
  /// bypass the merge (a dead node must not stall or distort it) but still
  /// pass the CRE matcher, since they may be reasons a held consequence is
  /// waiting for. Inline this is synchronous and returns the drained count;
  /// sharded it is asynchronous, returns 0, and the count lands in
  /// stats().oob_records once the shard processes the command.
  std::size_t remove_node(NodeId node);

  /// Shutdown path: stops the worker threads, then deterministically
  /// flushes every shard and k-way merges the remainders — identical
  /// output whatever the shard count. The pipeline stays usable afterwards
  /// in degraded inline form (per-shard, merge-free) for late stragglers.
  Status drain();

  // ---- ordered ingress (federation relay lanes) ------------------------------
  // A relay connection's stream is already (timestamp, node)-sorted and
  // carries watermarks, so it bypasses the sorter shards entirely and
  // enters the k-way merge as its own lane: the relay's batch/idle
  // watermarks replace the shard's wall-clock promise. Lanes are unbounded
  // deques guarded by merger_mutex_ — boundedness comes from the credit
  // window the ISM grants the relay session (admitted − drained), which is
  // exactly what the per-lane drained cell feeds.

  /// Registers an ordered-ingress lane (ordering thread). `drained` — may
  /// be null — is bumped once per record the merge releases from this lane,
  /// so credit grants track pipeline progress. Returns the lane id.
  std::size_t add_relay_lane(std::shared_ptr<std::atomic<std::uint64_t>> drained);
  /// Appends one relay batch's records — already sorted, already in this
  /// ISM's timebase — and then advances the lane watermark (ordering thread).
  Status submit_relay(std::size_t lane, std::vector<sensors::Record> records,
                      TimeMicros watermark);
  /// Watermark-only advance from an idle relay (ordering thread).
  void advance_relay_watermark(std::size_t lane, TimeMicros watermark);
  /// The relay disconnected: queued records still merge, but the lane stops
  /// gating (its watermark promise would otherwise freeze the merge).
  void flush_relay_lane(std::size_t lane);
  /// Re-arms a flushed lane when its relay session resumes (same lane keeps
  /// the dedupe cursor upstream; watermarks continue monotonically).
  void resume_relay_lane(std::size_t lane);
  [[nodiscard]] std::size_t relay_lane_count() const;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] bool threaded() const noexcept {
    return threads_running_.load(std::memory_order_acquire);
  }
  /// Aggregated over all shards (max_lateness_us reports the maximum).
  [[nodiscard]] SorterStats sorter_stats() const;
  [[nodiscard]] SorterStats shard_sorter_stats(std::size_t shard) const;
  /// Bucket-wise merges every shard's (or one shard's) out-of-order lateness
  /// distribution into `out` — the disorder signal behind sort.disorder_us.
  void merge_disorder(metrics::Histogram& out) const;
  void merge_shard_disorder(std::size_t shard, metrics::Histogram& out) const;
  /// Records pending per shard (for the periodic stats line).
  [[nodiscard]] std::vector<std::size_t> shard_depths() const;
  [[nodiscard]] std::vector<TimeMicros> shard_frames() const;
  [[nodiscard]] PipelineStats stats() const;
  /// Timestamp of the last record released through the k-way merge — the
  /// merge's release watermark. Monotone except for genuinely late records
  /// (already counted as merge_inversions); readable from any thread. The
  /// consumer gateway closes aggregation windows against this, so a window
  /// only closes once the merge has released past its end — a wall-clock
  /// close could seal a window while a delayed in-window record is still
  /// waiting in a sorter shard. INT64_MIN until the first release.
  [[nodiscard]] TimeMicros release_watermark() const noexcept {
    return release_watermark_.load(std::memory_order_acquire);
  }
  /// Snapshot of the CRE matcher's counters, safe from any thread while
  /// the pipeline runs (takes the merger mutex the owning thread holds
  /// during delivery).
  [[nodiscard]] CreStats cre_stats();
  /// The global post-merge matcher. Mutating/statistical reads are safe
  /// from the ordering thread only while the pipeline is not threaded (or
  /// after drain()); the merger thread owns it while sharded. For live
  /// counter reads use cre_stats().
  [[nodiscard]] CreMatcher& cre() noexcept { return cre_; }
  [[nodiscard]] const CreMatcher& cre() const noexcept { return cre_; }

 private:
  /// One unit on a shard → merger lane. Out-of-band entries (expiry drains)
  /// ride the same lane to keep them ordered relative to the shard's
  /// regular stream, but skip the merge at the far end.
  struct ShardOutput {
    sensors::Record record;
    bool out_of_band = false;
  };
  struct Shard;

  /// One ordered-ingress lane. The queue is guarded by merger_mutex_; the
  /// watermark and flushed flag are atomics so the merge can read them
  /// without extra synchronization points.
  struct RelayLane {
    std::deque<sensors::Record> queue;
    std::atomic<TimeMicros> watermark{std::numeric_limits<TimeMicros>::min()};
    std::atomic<bool> flushed{false};
    std::shared_ptr<std::atomic<std::uint64_t>> drained;  // may be null
  };

  void start_threads();
  void stop_threads();
  void shard_loop(Shard& shard);
  /// Commands + input drain + sorter service + watermark publish. Requires
  /// the shard's state mutex. Returns the sorter's next-due hint.
  TimeMicros shard_cycle(Shard& shard);
  void shard_emit(Shard& shard, sensors::Record record);
  void push_output(Shard& shard, ShardOutput out);
  void signal_shard(Shard& shard);
  void signal_merger();
  void merger_loop();
  /// Tops up one cached lane head, routing out-of-band entries straight to
  /// deliver_oob. Requires merger_mutex_.
  void refill_head(std::size_t lane);
  /// Drains the shard lanes through the k-way merge as far as the
  /// watermarks allow, releasing records in runs up to the watermark front
  /// (one front scan per run, not per record). Requires merger_mutex_.
  void merge_step();
  /// Final deterministic merge over recovered lane tails + flushed shard
  /// buffers (no watermark gating). Requires merger_mutex_.
  void merge_tails(std::vector<std::vector<ShardOutput>>& tails);
  /// CRE + sink delivery of one merged record. Requires merger_mutex_.
  void deliver(sensors::Record record);
  void deliver_oob(sensors::Record record);
  /// Releases timed-out CRE holds. Requires merger_mutex_.
  void cre_service();
  /// Stamps cre_pass on traced scratch records and hands them to the sink.
  void release_scratch();

  PipelineConfig config_;
  clk::Clock& clock_;
  SinkFn sink_;
  FlushFn flush_;
  CreMatcher cre_;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Ordered-ingress lanes. Appended (never removed) by the ordering thread
  /// under merger_mutex_; the merge reads it under the same mutex.
  std::vector<std::unique_ptr<RelayLane>> relay_lanes_;
  std::atomic<bool> threads_running_{false};
  std::atomic<bool> stop_{false};

  // ---- merger state (merger_mutex_; merger thread while sharded, the
  // ordering thread inline and at drain) ---------------------------------------
  std::mutex merger_mutex_;
  /// Cached lane heads: popped but not yet released by the watermark gate.
  std::vector<std::optional<ShardOutput>> heads_;
  TimeMicros last_merged_ts_ = 0;
  bool merged_any_ = false;
  /// Atomic mirror of last_merged_ts_ for cross-thread readers (see
  /// release_watermark()).
  std::atomic<TimeMicros> release_watermark_{std::numeric_limits<TimeMicros>::min()};
  std::vector<sensors::Record> cre_scratch_;
  std::thread merger_thread_;
  std::mutex merger_cv_mutex_;
  std::condition_variable merger_cv_;
  bool merger_signaled_ = false;

  // ---- stats ------------------------------------------------------------------
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> merged_{0};
  std::atomic<std::uint64_t> merge_inversions_{0};
  std::atomic<std::uint64_t> merge_runs_{0};
  std::atomic<std::uint64_t> submit_stalls_{0};
  std::atomic<std::uint64_t> oob_records_{0};
};

}  // namespace brisk::ism
