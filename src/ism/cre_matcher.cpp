#include "ism/cre_matcher.hpp"

#include <utility>

namespace brisk::ism {

CreMatcher::CreMatcher(const CreConfig& config, clk::Clock& clock,
                       std::function<void()> on_tachyon)
    : config_(config), clock_(clock), on_tachyon_(std::move(on_tachyon)) {}

void CreMatcher::repair(sensors::Record& conseq, TimeMicros reason_ts) {
  conseq.timestamp = reason_ts + config_.repair_margin_us;
  ++stats_.tachyons_repaired;
  ++stats_.extra_sync_requests;
  if (on_tachyon_) on_tachyon_();
}

void CreMatcher::process(sensors::Record record, std::vector<sensors::Record>& out) {
  if (config_.forward_only) {
    out.push_back(std::move(record));
    return;
  }
  const auto reason_id = record.reason_id();
  const auto conseq_id = record.conseq_id();

  if (reason_id.has_value()) {
    ++stats_.reasons_seen;
    const TimeMicros reason_ts = record.timestamp;
    reasons_[*reason_id] = {reason_ts, clock_.now()};

    // The reason record itself continues immediately (it is an event too) —
    // and FIRST: the matcher sits behind the merge, so `out` order is sink
    // order, and a consequence must never precede its reason.
    out.push_back(std::move(record));
    // Release every consequence waiting on this reason, repairing tachyons.
    auto [begin, end] = waiting_conseqs_.equal_range(*reason_id);
    for (auto it = begin; it != end; ++it) {
      sensors::Record conseq = std::move(it->second.record);
      ++stats_.matched;
      if (conseq.timestamp <= reason_ts) repair(conseq, reason_ts);
      out.push_back(std::move(conseq));
    }
    waiting_conseqs_.erase(begin, end);
    return;
  }

  if (conseq_id.has_value()) {
    ++stats_.conseqs_seen;
    auto it = reasons_.find(*conseq_id);
    if (it != reasons_.end()) {
      ++stats_.matched;
      if (record.timestamp <= it->second.timestamp) repair(record, it->second.timestamp);
      out.push_back(std::move(record));
      return;
    }
    // No reason yet: hold until it arrives or the timeout expires.
    ++stats_.conseqs_held;
    waiting_conseqs_.emplace(*conseq_id, HeldConseq{std::move(record), clock_.now()});
    return;
  }

  // Unmarked record: straight through.
  out.push_back(std::move(record));
}

void CreMatcher::service(std::vector<sensors::Record>& out) {
  const TimeMicros now = clock_.now();

  for (auto it = waiting_conseqs_.begin(); it != waiting_conseqs_.end();) {
    if (now - it->second.held_at >= config_.hold_timeout_us) {
      ++stats_.hold_timeouts;
      out.push_back(std::move(it->second.record));
      it = waiting_conseqs_.erase(it);
    } else {
      ++it;
    }
  }

  for (auto it = reasons_.begin(); it != reasons_.end();) {
    if (now - it->second.seen_at >= config_.hold_timeout_us) {
      it = reasons_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace brisk::ism
