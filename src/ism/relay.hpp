// Relay egress: the upstream half of a federated (relay-tier) ISM.
//
// A relay ISM runs the full ingest/ordering pipeline for the EXSes behind
// it, then — in addition to local sinks — forwards its post-merge,
// post-CRE ordered output to a *parent* ISM. To the parent the relay is
// EXS-shaped: it connects as a TP client, says HELLO with the
// ordered-stream capability bit, ships RELAY_BATCH frames through the same
// tp::UpstreamLink (replay buffer, go-back-N, credit pacing) an EXS uses,
// answers the parent's clock-sync polls, and folds ADJUST deltas into a
// parent-relative correction that it applies to every record before it
// leaves — so corrections compose hop by hop and records reach the root in
// the root's timebase.
//
// Threading: RelayEgress is an ism::Sink. accept()/tick() run on the relay
// pipeline's delivery thread (merger thread when sharded, ordering thread
// inline) and only touch a bounded SPSC queue plus an atomic watermark
// cell; a dedicated egress thread owns the socket, the frame reader, the
// UpstreamLink, the batch builder, and a net::Poller it sleeps on between
// cycles — it wakes early when the parent sends acks or (while the outbox
// holds deferred bytes) when the socket drains, instead of always paying
// the fixed poll_timeout_us nap. The pipeline is never blocked by a
// slow or dead parent link for long — backpressure is absorbed by the
// queue (spin + stall counter) and the bounded replay buffer.
//
// Outbound frames go through a FrameSendBuffer: a full kernel send buffer
// defers whole frames instead of blocking the egress thread mid-write, and
// the socket's poller subscription carries Readiness::writable only while
// that outbox is non-empty (the same want-writable toggling the ISM's
// control plane and the consumer gateway use). Only when the outbox itself
// hits its cap does the egress thread fall back to a bounded blocking
// flush — that is the backpressure that ultimately slows the relay down.
//
// Watermark discipline: the relay's output stream is (timestamp, node)
// sorted, so a sealed batch's watermark is the timestamp of its *last*
// record (shifted into the parent's timebase) — every record the relay
// will ever send afterwards is >= it. The pipeline's release watermark
// (via tick()) only feeds the standalone idle-watermark frames; using it
// for batches would be wrong while released records still sit in the
// egress queue. All outgoing watermarks are clamped monotone.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "clock/clock.hpp"
#include "common/spsc_queue.hpp"
#include "ism/output.hpp"
#include "ism/relay_aggregator.hpp"
#include "metrics/flight_recorder.hpp"
#include "net/frame.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "tp/batch.hpp"
#include "tp/upstream_link.hpp"

namespace brisk::ism {

struct RelayConfig {
  std::string parent_host = "127.0.0.1";
  std::uint16_t parent_port = 0;
  /// The relay's own node identity toward its parent (--relay-node). Also
  /// stamped onto relay-originated metrics/trace records in place of the
  /// reserved kIsmMetricsNodeId, so snapshots from different relays stay
  /// distinguishable at the root.
  NodeId relay_node = 0;
  /// Session incarnation; 0 = derive one at start (pid ⊕ monotonic clock),
  /// exactly like the EXS daemon.
  std::uint64_t incarnation = 0;
  /// Depth of the pipeline→egress record queue.
  std::size_t queue_records = 8192;
  /// Batch seal thresholds (records / payload bytes / age).
  std::size_t batch_max_records = 512;
  std::size_t batch_max_bytes = 64 * 1024;
  TimeMicros batch_max_age_us = 5'000;
  /// Cadence of standalone RELAY_WATERMARK frames while no data flows, so
  /// an idle relay never stalls the parent's merge. 0 disables them.
  TimeMicros idle_watermark_period_us = 50'000;
  TimeMicros heartbeat_period_us = 1'000'000;
  /// Egress-thread readiness-wait bound while idle (the poller wakes the
  /// thread earlier on parent acks or outbox drainage).
  TimeMicros poll_timeout_us = 2'000;
  /// Poller backend the egress thread sleeps on.
  net::PollerBackend poller = net::PollerBackend::select;
  /// Cap on deferred outbound bytes; past it sends fall back to a bounded
  /// blocking flush (send_stall_timeout_us) before the link counts as lost.
  std::size_t outbox_bytes = net::kDefaultSendBufferBytes;
  TimeMicros send_stall_timeout_us = 2'000'000;
  /// Replay depth toward the parent; see tp::LinkConfig.
  std::size_t replay_batches = 256;
  std::size_t replay_bytes = 0;
  bool pace = true;
  tp::ReconnectConfig reconnect;
  /// How long drain() waits for the queue + replay buffer to empty.
  TimeMicros drain_timeout_us = 2'000'000;
  /// In-tree metrics aggregation (--relay-aggregate-metrics): absorb the
  /// subtree's 0xFF01 records and forward one merged "agg."-prefixed
  /// snapshot per metrics_flush_period_us instead of every record.
  /// Relay-local snapshots (reserved metrics node re-stamped to relay_node)
  /// pass through either way. Off = byte-exact pass-through (the
  /// compatibility default).
  bool aggregate_metrics = false;
  TimeMicros metrics_flush_period_us = 1'000'000;
};

struct RelayEgressStats {
  std::uint64_t records_forwarded = 0;
  std::uint64_t batches_sent = 0;
  std::uint64_t queue_stalls = 0;
  std::uint64_t sync_polls_answered = 0;
  std::uint64_t sync_adjustments = 0;
  std::uint64_t reconnects = 0;
  /// Subtree 0xFF01 records absorbed / aggregated snapshots flushed (zero
  /// unless aggregate_metrics is on).
  std::uint64_t metrics_absorbed = 0;
  std::uint64_t aggregated_flushes = 0;
  tp::LinkStats link;
};

class RelayEgress final : public Sink {
 public:
  /// Connects to the parent and starts the egress thread. The initial
  /// connection must succeed (same contract as ExternalSensor::connect);
  /// later losses are survived by the reconnect schedule.
  static Result<std::shared_ptr<RelayEgress>> connect(const RelayConfig& config,
                                                      clk::Clock& clock);

  ~RelayEgress() override;

  // --- Sink interface (pipeline delivery thread) -----------------------------
  Status accept(const sensors::Record& record) override;
  void tick(TimeMicros watermark) override;
  /// Blocks until everything accepted so far has been shipped *and acked*
  /// by the parent (or drain_timeout_us elapses), sends BYE, and stops the
  /// egress thread.
  Status drain() override;
  [[nodiscard]] const char* name() const noexcept override { return "relay"; }

  /// Parent-relative clock correction accumulated from ADJUST frames.
  [[nodiscard]] TimeMicros correction() const noexcept {
    return correction_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool connected() const noexcept {
    return connected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] RelayEgressStats stats() const;

  /// Shares the co-located ISM's flight recorder so relay-side events
  /// (reconnects, outbox stalls) land in the same ring. May be called from
  /// any thread; null detaches.
  void set_flight_recorder(metrics::FlightRecorder* flight) noexcept {
    flight_.store(flight, std::memory_order_release);
  }

 private:
  RelayEgress(const RelayConfig& config, clk::Clock& clock, net::TcpSocket socket);

  void run();                     // egress thread main
  Status cycle();                 // one egress iteration (link_mutex_ held)
  Status pump_socket();           // read + dispatch parent frames
  Status handle_frame(ByteSpan payload);
  Status service_queue();         // move queued records into the builder
  /// Ships the aggregator's merged snapshot into the builder when its flush
  /// period elapses (`force` also flushes pending state — the drain path).
  Status flush_aggregates(bool force);
  Status maybe_seal(bool force);  // seal/ship the pending batch
  /// `tick_wm` must have been read *before* the cycle's service_queue()
  /// pass — see cycle() for why promising a later value would be unsound.
  Status send_idle_watermark(TimeMicros tick_wm);
  void handle_disconnect();
  void maybe_reconnect();
  /// Enqueues one frame into the outbox and pumps; on Errc::buffer_full
  /// falls back to a bounded blocking flush (the relay's backpressure).
  Status send_frame(ByteSpan payload);
  /// (Re)subscribes the current socket fd with readable[|writable per the
  /// outbox state]; drops any watch on a previous fd.
  void watch_socket();
  void unwatch_socket();
  /// Toggles the writable half of the subscription to match the outbox.
  void update_write_interest();

  RelayConfig config_;
  clk::Clock& clock_;
  net::TcpSocket socket_;
  net::FrameReader frame_reader_;
  net::FrameSendBuffer outbox_;
  SpscQueue<sensors::Record> queue_;
  tp::UpstreamLink link_;
  tp::RelayBatchBuilder builder_;
  tp::ReconnectSchedule reconnect_;
  /// Egress-thread state (mutated under link_mutex_; stats() reads it there).
  RelayAggregator aggregator_;
  std::atomic<metrics::FlightRecorder*> flight_{nullptr};

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> drained_{false};
  std::atomic<bool> connected_{false};
  std::atomic<TimeMicros> correction_{0};
  /// Pipeline release watermark (relay timebase), stored by tick().
  std::atomic<TimeMicros> tick_watermark_{INT64_MIN};

  // --- egress-thread state ----------------------------------------------------
  /// Readiness wait for the egress thread (created on that thread in run();
  /// connect()-time sends happen before it exists and just skip the watch).
  std::unique_ptr<net::Poller> poller_;
  int watched_fd_ = -1;         // fd currently registered with poller_
  bool want_writable_ = false;  // writable half of the subscription
  /// Monotone high-water of every watermark sent (parent timebase).
  TimeMicros wm_out_ = INT64_MIN;
  /// Timestamp (parent timebase) of the last record added to the builder.
  TimeMicros last_record_ts_ = INT64_MIN;
  TimeMicros batch_started_at_ = 0;  // monotonic, 0 = builder empty
  TimeMicros last_tx_us_ = 0;        // monotonic, any outbound frame
  TimeMicros last_wm_tx_us_ = 0;     // monotonic, last watermark shipped

  // --- counters (egress thread writes, stats() reads) -------------------------
  std::atomic<std::uint64_t> records_forwarded_{0};
  std::atomic<std::uint64_t> batches_sent_{0};
  std::atomic<std::uint64_t> queue_stalls_{0};
  std::atomic<std::uint64_t> sync_polls_answered_{0};
  std::atomic<std::uint64_t> sync_adjustments_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  /// Serializes egress-thread cycles against stats() link snapshots and
  /// drain()'s final BYE.
  mutable std::mutex link_mutex_;
};

}  // namespace brisk::ism
