// EventQueue is header-only; see event_queue.hpp.
#include "ism/event_queue.hpp"
