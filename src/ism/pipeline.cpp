#include "ism/pipeline.hpp"

#include <chrono>

#include "common/logging.hpp"

namespace brisk::ism {

namespace {

/// The global merge key, identical to MergeHeap's Entry ordering: timestamp
/// first, node id as the deterministic tie-break. Because every node lives
/// on exactly one shard and each shard emits its nodes in this same order,
/// k-way merging by this key reproduces the monolithic sorter's output.
bool key_less(const sensors::Record& a, const sensors::Record& b) noexcept {
  if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
  return a.node < b.node;
}

}  // namespace

std::size_t shard_of_node(NodeId node, std::size_t shards) noexcept {
  if (shards <= 1) return 0;
  // Fibonacci hashing: striding node ids (0,1,2,… or 0,4,8,…) spread evenly.
  const std::uint64_t mixed =
      (static_cast<std::uint64_t>(node) * 0x9E3779B97F4A7C15ull) >> 32;
  return static_cast<std::size_t>(mixed % shards);
}

struct OrderingPipeline::Shard {
  Shard(std::size_t index, std::size_t lane_depth)
      : index(index), input(lane_depth), output(lane_depth) {}

  const std::size_t index;
  SpscQueue<sensors::Record> input;  // ordering thread → shard worker
  SpscQueue<ShardOutput> output;     // shard worker → merger
  /// Lower bound on this shard's future in-order emission timestamps
  /// (monotone; release-published after each sorter service).
  std::atomic<TimeMicros> watermark{std::numeric_limits<TimeMicros>::min()};
  /// drain() flushed this shard: its stream is complete, stop gating on it.
  std::atomic<bool> flushed{false};

  // Guarded by state_mutex: the sorter plus the emit-routing flags. Owned
  // by the shard thread while the pipeline is threaded, by the ordering
  // thread otherwise; stats readers take it for snapshots either way.
  mutable std::mutex state_mutex;
  std::unique_ptr<OnlineSorter> sorter;
  /// Emissions while set are expiry drains: they ride the lane marked
  /// out_of_band (threaded) or go straight to deliver_oob (inline).
  bool oob_mode = false;
  /// When non-null (drain), emissions are collected here instead of
  /// entering the lane — the final merge wants them as a plain vector.
  std::vector<ShardOutput>* collect = nullptr;
  /// Emissions that found the output lane full during shutdown; recovered
  /// by drain() after the lane contents (emission order is preserved).
  std::vector<ShardOutput> spill;
  /// Inline federated mode only (no worker threads + relay lanes present):
  /// sorter emissions stage here — guarded by merger_mutex_ — instead of
  /// being delivered directly, so the ordering thread's merge_step can
  /// interleave them with the relay lanes. Always empty when threaded.
  std::deque<ShardOutput> inline_lane;

  std::mutex cmd_mutex;
  std::vector<NodeId> removals;  // session-expiry commands, ordering → shard

  bool pending_signal = false;  // shard thread only: merger wakeup owed

  std::thread thread;
  std::mutex cv_mutex;
  std::condition_variable cv;
  bool signaled = false;
};

OrderingPipeline::OrderingPipeline(const PipelineConfig& config, clk::Clock& clock,
                                   SinkFn sink, FlushFn flush, TachyonFn on_tachyon)
    : config_(config),
      clock_(clock),
      sink_(std::move(sink)),
      flush_(std::move(flush)),
      cre_(config.cre, clock, std::move(on_tachyon)) {
  if (config_.shards == 0) config_.shards = 1;
  shards_.reserve(config_.shards);
  heads_.resize(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>(i, config_.shard_queue_records);
    Shard* raw = shard.get();
    shard->sorter = std::make_unique<OnlineSorter>(
        config_.sorter, clock_,
        [this, raw](sensors::Record record) { shard_emit(*raw, std::move(record)); });
    shards_.push_back(std::move(shard));
  }
  if (config_.shards > 1) start_threads();
}

OrderingPipeline::~OrderingPipeline() { stop_threads(); }

void OrderingPipeline::start_threads() {
  stop_.store(false, std::memory_order_release);
  threads_running_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, raw = shard.get()] { shard_loop(*raw); });
  }
  merger_thread_ = std::thread([this] { merger_loop(); });
}

void OrderingPipeline::stop_threads() {
  if (!threads_running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) signal_shard(*shard);
  signal_merger();
  // Shards first: they may be spinning on a full output lane, and the spin
  // breaks out (to the spill vector) only on stop_ — never wait on the
  // merger to make room for them.
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  if (merger_thread_.joinable()) merger_thread_.join();
  threads_running_.store(false, std::memory_order_release);
}

void OrderingPipeline::signal_shard(Shard& shard) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lk(shard.cv_mutex);
    if (!shard.signaled) {
      shard.signaled = true;
      notify = true;
    }
  }
  if (notify) shard.cv.notify_one();
}

void OrderingPipeline::signal_merger() {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lk(merger_cv_mutex_);
    if (!merger_signaled_) {
      merger_signaled_ = true;
      notify = true;
    }
  }
  if (notify) merger_cv_.notify_one();
}

// ---- ordering-thread API ----------------------------------------------------

Status OrderingPipeline::submit(sensors::Record record) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[shard_of_node(record.node, shards_.size())];
  if (threads_running_.load(std::memory_order_acquire)) {
    bool stalled = false;
    while (!shard.input.try_push(std::move(record))) {
      if (stop_.load(std::memory_order_relaxed)) break;  // worker is gone
      if (!stalled) {
        stalled = true;
        submit_stalls_.fetch_add(1, std::memory_order_relaxed);
      }
      signal_shard(shard);
      std::this_thread::yield();
    }
    if (!stop_.load(std::memory_order_relaxed)) {
      signal_shard(shard);
      return Status::ok();
    }
    // fall through: mid-shutdown straggler, push inline below
  }
  std::lock_guard<std::mutex> lk(shard.state_mutex);
  return shard.sorter->push(std::move(record));
}

void OrderingPipeline::service() {
  if (threads_running_.load(std::memory_order_acquire)) return;
  // relay_lanes_ is only ever mutated on this thread, so the unlocked
  // emptiness probe is race-free; the merge itself runs under the mutex.
  const bool federated = !relay_lanes_.empty();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->state_mutex);
    sensors::Record record;
    while (shard->input.try_pop(record)) {
      Status st = shard->sorter->push(std::move(record));
      if (!st) {
        BRISK_LOG_WARN << "sorter push failed: " << st.to_string();
      }
    }
    shard->sorter->service();
    if (federated) {
      // Inline shards normally never publish a watermark (emissions deliver
      // directly); once relay lanes gate the merge they must make the same
      // promise the threaded shard_cycle makes.
      const TimeMicros wm = clock_.now() - shard->sorter->current_frame();
      if (wm > shard->watermark.load(std::memory_order_relaxed)) {
        shard->watermark.store(wm, std::memory_order_release);
      }
    }
  }
  std::lock_guard<std::mutex> lk(merger_mutex_);
  if (federated) merge_step();
  cre_service();
}

std::size_t OrderingPipeline::remove_node(NodeId node) {
  Shard& shard = *shards_[shard_of_node(node, shards_.size())];
  if (threads_running_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lk(shard.cmd_mutex);
      shard.removals.push_back(node);
    }
    signal_shard(shard);
    return 0;  // drained asynchronously; lands in stats().oob_records
  }
  std::lock_guard<std::mutex> lk(shard.state_mutex);
  shard.oob_mode = true;
  const std::size_t drained = shard.sorter->remove_node(node);
  shard.oob_mode = false;
  return drained;
}

Status OrderingPipeline::drain() {
  stop_threads();
  std::vector<std::vector<ShardOutput>> tails(shards_.size() + relay_lanes_.size());
  {
    // Recover heads the live merge had popped but not yet released. The
    // threads are joined, so lock order versus state_mutex is moot here.
    std::lock_guard<std::mutex> lk(merger_mutex_);
    for (std::size_t i = 0; i < heads_.size(); ++i) {
      if (heads_[i]) {
        tails[i].push_back(std::move(*heads_[i]));
        heads_[i].reset();
      }
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lk(shard.state_mutex);
    // Emission order within a shard: lane contents, then inline stagings,
    // then spill (emitted when the lane was already full), then whatever
    // the flush releases.
    ShardOutput out;
    while (shard.output.try_pop(out)) tails[i].push_back(std::move(out));
    {
      std::lock_guard<std::mutex> mk(merger_mutex_);
      for (ShardOutput& staged : shard.inline_lane) tails[i].push_back(std::move(staged));
      shard.inline_lane.clear();
    }
    for (ShardOutput& spilled : shard.spill) tails[i].push_back(std::move(spilled));
    shard.spill.clear();
    sensors::Record record;
    while (shard.input.try_pop(record)) {
      Status st = shard.sorter->push(std::move(record));
      if (!st) return st;
    }
    shard.collect = &tails[i];
    shard.sorter->flush_all();
    shard.collect = nullptr;
    shard.flushed.store(true, std::memory_order_release);
  }
  std::lock_guard<std::mutex> lk(merger_mutex_);
  // Relay lanes are already ordered streams: their leftovers become tails
  // verbatim and stop gating (the relay's stream is over for this run).
  for (std::size_t j = 0; j < relay_lanes_.size(); ++j) {
    RelayLane& lane = *relay_lanes_[j];
    std::vector<ShardOutput>& tail = tails[shards_.size() + j];
    for (sensors::Record& queued : lane.queue) {
      if (lane.drained) lane.drained->fetch_add(1, std::memory_order_relaxed);
      tail.push_back(ShardOutput{std::move(queued), false});
    }
    lane.queue.clear();
    lane.flushed.store(true, std::memory_order_release);
  }
  merge_tails(tails);
  cre_service();
  return Status::ok();
}

// ---- ordered ingress (relay lanes) ------------------------------------------

std::size_t OrderingPipeline::add_relay_lane(
    std::shared_ptr<std::atomic<std::uint64_t>> drained) {
  std::lock_guard<std::mutex> lk(merger_mutex_);
  auto lane = std::make_unique<RelayLane>();
  lane->drained = std::move(drained);
  relay_lanes_.push_back(std::move(lane));
  return relay_lanes_.size() - 1;
}

Status OrderingPipeline::submit_relay(std::size_t lane_index,
                                      std::vector<sensors::Record> records,
                                      TimeMicros watermark) {
  if (lane_index >= relay_lanes_.size()) {
    return Status(Errc::invalid_argument, "unknown relay lane");
  }
  RelayLane& lane = *relay_lanes_[lane_index];
  submitted_.fetch_add(records.size(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(merger_mutex_);
    for (sensors::Record& record : records) lane.queue.push_back(std::move(record));
  }
  // Watermark strictly after the records it covers are visible; a merge
  // interleaving between the two blocks under-releases, never over-releases.
  advance_relay_watermark(lane_index, watermark);
  if (threads_running_.load(std::memory_order_acquire)) signal_merger();
  return Status::ok();
}

void OrderingPipeline::advance_relay_watermark(std::size_t lane_index, TimeMicros watermark) {
  if (lane_index >= relay_lanes_.size()) return;
  RelayLane& lane = *relay_lanes_[lane_index];
  if (watermark > lane.watermark.load(std::memory_order_relaxed)) {
    lane.watermark.store(watermark, std::memory_order_release);
  }
  if (threads_running_.load(std::memory_order_acquire)) signal_merger();
}

void OrderingPipeline::flush_relay_lane(std::size_t lane_index) {
  if (lane_index >= relay_lanes_.size()) return;
  relay_lanes_[lane_index]->flushed.store(true, std::memory_order_release);
  if (threads_running_.load(std::memory_order_acquire)) signal_merger();
}

void OrderingPipeline::resume_relay_lane(std::size_t lane_index) {
  if (lane_index >= relay_lanes_.size()) return;
  relay_lanes_[lane_index]->flushed.store(false, std::memory_order_release);
}

std::size_t OrderingPipeline::relay_lane_count() const {
  return relay_lanes_.size();
}

// ---- shard side -------------------------------------------------------------

void OrderingPipeline::shard_emit(Shard& shard, sensors::Record record) {
  if (record.trace) {
    record.trace->stamp(sensors::TraceStage::sorter_release, clock_.now());
  }
  if (shard.collect != nullptr) {
    shard.collect->push_back(ShardOutput{std::move(record), shard.oob_mode});
    return;
  }
  if (threads_running_.load(std::memory_order_acquire)) {
    push_output(shard, ShardOutput{std::move(record), shard.oob_mode});
    return;
  }
  // Inline (shards == 1) or post-drain degraded mode: deliver directly —
  // unless relay lanes exist, in which case local emissions must stage and
  // interleave with the relay streams through merge_step (a direct delivery
  // here would overtake relay records with smaller timestamps).
  std::lock_guard<std::mutex> lk(merger_mutex_);
  if (shard.oob_mode) {
    deliver_oob(std::move(record));
  } else if (!relay_lanes_.empty()) {
    shard.inline_lane.push_back(ShardOutput{std::move(record), false});
  } else {
    deliver(std::move(record));
  }
}

void OrderingPipeline::push_output(Shard& shard, ShardOutput out) {
  while (!shard.output.try_push(std::move(out))) {
    if (stop_.load(std::memory_order_relaxed)) {
      shard.spill.push_back(std::move(out));
      return;
    }
    // Lane full: bounded backpressure on this shard's sorter. Wake the
    // merger now rather than at cycle end — it is the only consumer.
    shard.pending_signal = false;
    signal_merger();
    std::this_thread::yield();
  }
  shard.pending_signal = true;
}

TimeMicros OrderingPipeline::shard_cycle(Shard& shard) {
  std::vector<NodeId> removals;
  {
    std::lock_guard<std::mutex> lk(shard.cmd_mutex);
    removals.swap(shard.removals);
  }
  for (NodeId node : removals) {
    shard.oob_mode = true;
    (void)shard.sorter->remove_node(node);
    shard.oob_mode = false;
  }
  sensors::Record record;
  while (shard.input.try_pop(record)) {
    Status st = shard.sorter->push(std::move(record));
    if (!st) {
      BRISK_LOG_WARN << "shard sorter push failed: " << st.to_string();
    }
  }
  shard.sorter->service();
  // Publish after servicing: everything at or below now - T has left the
  // sorter, so future in-order emissions are strictly above the watermark.
  const TimeMicros wm = clock_.now() - shard.sorter->current_frame();
  if (wm > shard.watermark.load(std::memory_order_relaxed)) {
    shard.watermark.store(wm, std::memory_order_release);
  }
  return shard.sorter->next_due_in();
}

void OrderingPipeline::shard_loop(Shard& shard) {
  while (!stop_.load(std::memory_order_acquire)) {
    TimeMicros due;
    {
      std::lock_guard<std::mutex> lk(shard.state_mutex);
      due = shard_cycle(shard);
    }
    if (shard.pending_signal) {
      shard.pending_signal = false;
      signal_merger();
    }
    TimeMicros wait_us = config_.poll_timeout_us;
    if (due >= 0 && due < wait_us) wait_us = due > 100 ? due : 100;
    std::unique_lock<std::mutex> lk(shard.cv_mutex);
    shard.cv.wait_for(lk, std::chrono::microseconds(wait_us), [&] {
      return shard.signaled || stop_.load(std::memory_order_relaxed);
    });
    shard.signaled = false;
  }
}

// ---- merger side ------------------------------------------------------------

void OrderingPipeline::merger_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lk(merger_mutex_);
      merge_step();
      cre_service();
    }
    flush_();
    std::unique_lock<std::mutex> lk(merger_cv_mutex_);
    merger_cv_.wait_for(lk, std::chrono::microseconds(config_.poll_timeout_us), [&] {
      return merger_signaled_ || stop_.load(std::memory_order_relaxed);
    });
    merger_signaled_ = false;
  }
}

void OrderingPipeline::refill_head(std::size_t lane) {
  while (!heads_[lane]) {
    ShardOutput out;
    if (!shards_[lane]->output.try_pop(out)) {
      // Inline federated mode stages emissions in inline_lane instead of
      // the SPSC; only one of the two is ever active, so draining the SPSC
      // first preserves emission order across a mode transition.
      std::deque<ShardOutput>& staged = shards_[lane]->inline_lane;
      if (staged.empty()) return;
      out = std::move(staged.front());
      staged.pop_front();
    }
    if (out.out_of_band) {
      // Expiry drains leave the merge immediately — a dead node's leftovers
      // must not gate it.
      deliver_oob(std::move(out.record));
      continue;
    }
    heads_[lane] = std::move(out);
  }
}

void OrderingPipeline::merge_step() {
  const std::size_t n = shards_.size();
  const std::size_t m = relay_lanes_.size();
  const std::size_t total = n + m;
  for (;;) {
    for (std::size_t i = 0; i < n; ++i) refill_head(i);
    // The watermark barrier, computed once per release run instead of once
    // per record: an empty, unflushed lane may still produce a smaller
    // timestamp, so the run may release only keys at or below the smallest
    // such watermark. Lanes holding a cached head gate through the head
    // itself in the k-way pick; flushed lanes are complete and never gate.
    // Watermarks are monotone, so this snapshot can only under-release —
    // the next pass picks up whatever it left behind. Idle shards keep
    // publishing wall-clock watermarks, so an empty shard lane stalls the
    // merge by at most one poll cycle + T. Relay lanes gate through the
    // watermark their relay last promised (batch header or idle frame) —
    // an empty relay lane stalls the merge until its next promise.
    TimeMicros bound = std::numeric_limits<TimeMicros>::max();
    for (std::size_t i = 0; i < n; ++i) {
      if (heads_[i] || shards_[i]->flushed.load(std::memory_order_acquire)) continue;
      const TimeMicros wm = shards_[i]->watermark.load(std::memory_order_acquire);
      if (wm < bound) bound = wm;
    }
    for (std::size_t j = 0; j < m; ++j) {
      RelayLane& lane = *relay_lanes_[j];
      if (!lane.queue.empty() || lane.flushed.load(std::memory_order_acquire)) continue;
      const TimeMicros wm = lane.watermark.load(std::memory_order_acquire);
      if (wm < bound) bound = wm;
    }
    bool progressed = false;
    for (;;) {
      // K-way pick over shard heads and relay lane fronts (lane index space:
      // [0, n) shards, [n, total) relay lanes).
      std::size_t best = total;
      const sensors::Record* best_record = nullptr;
      for (std::size_t i = 0; i < total; ++i) {
        const sensors::Record* candidate = nullptr;
        if (i < n) {
          if (heads_[i]) candidate = &heads_[i]->record;
        } else {
          const std::deque<sensors::Record>& q = relay_lanes_[i - n]->queue;
          if (!q.empty()) candidate = &q.front();
        }
        if (candidate == nullptr) continue;
        if (best_record == nullptr || key_less(*candidate, *best_record)) {
          best = i;
          best_record = candidate;
        }
      }
      if (best == total || best_record->timestamp > bound) break;
      sensors::Record record;
      if (best < n) {
        record = std::move(heads_[best]->record);
        heads_[best].reset();
        refill_head(best);
        if (!heads_[best] && !shards_[best]->flushed.load(std::memory_order_acquire)) {
          // The popped lane went empty mid-run: it re-enters the barrier
          // with its current watermark, tightening the bound if needed.
          const TimeMicros wm = shards_[best]->watermark.load(std::memory_order_acquire);
          if (wm < bound) bound = wm;
        }
      } else {
        RelayLane& lane = *relay_lanes_[best - n];
        record = std::move(lane.queue.front());
        lane.queue.pop_front();
        if (lane.drained) lane.drained->fetch_add(1, std::memory_order_relaxed);
        if (lane.queue.empty() && !lane.flushed.load(std::memory_order_acquire)) {
          const TimeMicros wm = lane.watermark.load(std::memory_order_acquire);
          if (wm < bound) bound = wm;
        }
      }
      if (merged_any_ && record.timestamp < last_merged_ts_) {
        merge_inversions_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!merged_any_ || record.timestamp > last_merged_ts_) {
        last_merged_ts_ = record.timestamp;
      }
      merged_any_ = true;
      deliver(std::move(record));
      progressed = true;
    }
    if (progressed) {
      merge_runs_.fetch_add(1, std::memory_order_relaxed);
    } else {
      return;
    }
  }
}

void OrderingPipeline::merge_tails(std::vector<std::vector<ShardOutput>>& tails) {
  std::vector<std::size_t> cursors(tails.size(), 0);
  for (;;) {
    for (std::size_t i = 0; i < tails.size(); ++i) {
      while (cursors[i] < tails[i].size() && tails[i][cursors[i]].out_of_band) {
        deliver_oob(std::move(tails[i][cursors[i]].record));
        ++cursors[i];
      }
    }
    std::size_t best = tails.size();
    for (std::size_t i = 0; i < tails.size(); ++i) {
      if (cursors[i] >= tails[i].size()) continue;
      if (best == tails.size() ||
          key_less(tails[i][cursors[i]].record, tails[best][cursors[best]].record)) {
        best = i;
      }
    }
    if (best == tails.size()) return;
    sensors::Record record = std::move(tails[best][cursors[best]].record);
    ++cursors[best];
    if (merged_any_ && record.timestamp < last_merged_ts_) {
      merge_inversions_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!merged_any_ || record.timestamp > last_merged_ts_) {
      last_merged_ts_ = record.timestamp;
    }
    merged_any_ = true;
    deliver(std::move(record));
  }
}

void OrderingPipeline::deliver(sensors::Record record) {
  merged_.fetch_add(1, std::memory_order_relaxed);
  // Monotone max over the in-order release stream (single writer: whichever
  // thread holds merger_mutex_). Out-of-band expiry drains skip this — a
  // dead node's stale timestamps must not drag the watermark around.
  if (record.timestamp > release_watermark_.load(std::memory_order_relaxed)) {
    release_watermark_.store(record.timestamp, std::memory_order_release);
  }
  if (record.trace) {
    record.trace->stamp(sensors::TraceStage::merge_release, clock_.now());
  }
  cre_scratch_.clear();
  cre_.process(std::move(record), cre_scratch_);
  release_scratch();
}

void OrderingPipeline::deliver_oob(sensors::Record record) {
  oob_records_.fetch_add(1, std::memory_order_relaxed);
  // First CRE contact for these records (the matcher sits behind the
  // merge now): an expiry-drained reason may release a held consequence.
  // No merge_release stamp — these bypassed the merge, and the span should
  // say so.
  cre_scratch_.clear();
  cre_.process(std::move(record), cre_scratch_);
  release_scratch();
}

void OrderingPipeline::cre_service() {
  cre_scratch_.clear();
  cre_.service(cre_scratch_);
  release_scratch();
}

void OrderingPipeline::release_scratch() {
  for (sensors::Record& ready : cre_scratch_) {
    if (ready.trace) {
      ready.trace->stamp(sensors::TraceStage::cre_pass, clock_.now());
    }
    sink_(ready);
  }
}

// ---- stats ------------------------------------------------------------------

SorterStats OrderingPipeline::sorter_stats() const {
  SorterStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->state_mutex);
    const SorterStats& s = shard->sorter->stats();
    total.pushed += s.pushed;
    total.emitted += s.emitted;
    total.out_of_order_emissions += s.out_of_order_emissions;
    total.frame_raises += s.frame_raises;
    total.overflow_emits += s.overflow_emits;
    total.overflow_drops += s.overflow_drops;
    if (s.max_lateness_us > total.max_lateness_us) total.max_lateness_us = s.max_lateness_us;
    total.total_delay_us += s.total_delay_us;
    total.late_drops += s.late_drops;
  }
  return total;
}

SorterStats OrderingPipeline::shard_sorter_stats(std::size_t shard) const {
  std::lock_guard<std::mutex> lk(shards_[shard]->state_mutex);
  return shards_[shard]->sorter->stats();
}

void OrderingPipeline::merge_disorder(metrics::Histogram& out) const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    merge_shard_disorder(i, out);
  }
}

void OrderingPipeline::merge_shard_disorder(std::size_t shard, metrics::Histogram& out) const {
  std::lock_guard<std::mutex> lk(shards_[shard]->state_mutex);
  out.merge_from(shards_[shard]->sorter->disorder());
}

std::vector<std::size_t> OrderingPipeline::shard_depths() const {
  std::vector<std::size_t> depths;
  depths.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->state_mutex);
    depths.push_back(shard->sorter->pending() + shard->input.size());
  }
  return depths;
}

std::vector<TimeMicros> OrderingPipeline::shard_frames() const {
  std::vector<TimeMicros> frames;
  frames.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->state_mutex);
    frames.push_back(shard->sorter->current_frame());
  }
  return frames;
}

CreStats OrderingPipeline::cre_stats() {
  std::lock_guard<std::mutex> lk(merger_mutex_);
  return cre_.stats();
}

PipelineStats OrderingPipeline::stats() const {
  PipelineStats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.merged = merged_.load(std::memory_order_relaxed);
  out.merge_inversions = merge_inversions_.load(std::memory_order_relaxed);
  out.merge_runs = merge_runs_.load(std::memory_order_relaxed);
  out.submit_stalls = submit_stalls_.load(std::memory_order_relaxed);
  out.oob_records = oob_records_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace brisk::ism
