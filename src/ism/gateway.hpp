// The consumer fan-out gateway: the sink API redesigned around
// per-subscriber filtered and aggregated streams.
//
// The paper's ISM fans sorted records out to a fixed list of output paths
// (shared memory, PICL file, visual objects) that each see *every* record.
// The gateway inverts that: consumers *subscribe* with a pushed-down filter
// predicate (ism/filter.hpp) evaluated before fan-out, so a subscriber
// interested in one node's sensors costs one predicate test per record, not
// one delivered copy. Two subscription shapes:
//
//  * stream — every matching record, in sorted order;
//  * aggregate — per-(node, sensor) count + inter-arrival histogram over
//    fixed, timestamp-aligned windows. Windows close against the ordering
//    pipeline's release watermark (OrderingPipeline::release_watermark), so
//    a window only seals once the merge can no longer release into it.
//
// And two transports:
//
//  * in-process — a Sink plus options; delivery stays synchronous on the
//    pipeline's exit thread (this is what keeps the determinism grid
//    byte-identical: the shm ring sees the same accept() sequence it always
//    did). The classic ShmSink/PiclFileSink/CallbackSink/VoSink become
//    built-in subscribers; the pipeline still talks to exactly one object.
//  * TCP — brisk_ism --consumer-port starts a listener on the gateway's
//    dedicated fan-out thread (net::Poller + FrameSendBuffer, the same
//    machinery as the EXS-facing server). The pipeline exit thread feeds the
//    fan-out thread through one bounded SPSC lane, so a slow or stalled
//    consumer can never back-pressure the merge.
//
// Slow-consumer policy (TCP): each subscriber owns a bounded frame queue.
// Overflow evicts the *oldest* queued frame (drop-oldest; the freshest data
// survives) and counts it in the subscriber's dropped counter, visible in
// the 0xFF01 metrics stream as ism.gateway.sub.<name>.dropped. A subscriber
// that stays overrun for overrun_grace_us is disconnected — the gateway
// protects itself, the merge, and the other subscribers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/spsc_queue.hpp"
#include "ism/filter.hpp"
#include "ism/output.hpp"
#include "metrics/flight_recorder.hpp"
#include "metrics/metrics.hpp"
#include "net/frame.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "net/wakeup.hpp"
#include "tp/wire.hpp"

namespace brisk::ism {

struct GatewayConfig {
  /// Starts the TCP listener + fan-out thread when true.
  bool tcp_enabled = false;
  /// Listener port (0 = ephemeral; read back via consumer_port()).
  std::uint16_t consumer_port = 0;
  net::PollerBackend poller = net::PollerBackend::select;
  /// Depth (records) of the pipeline → fan-out SPSC lane.
  std::size_t lane_records = 8192;
  /// Default per-TCP-subscriber queue depth (records/frames); a SUBSCRIBE
  /// may ask for its own, clamped to max_queue_records.
  std::size_t queue_records = 1024;
  std::size_t max_queue_records = 65536;
  /// Per-subscriber outbound socket buffer cap (see net::FrameSendBuffer).
  std::size_t outbox_bytes = 1u << 20;
  /// A TCP subscriber continuously overrunning its queue for this long is
  /// disconnected.
  TimeMicros overrun_grace_us = 2'000'000;
  /// Default aggregation window; a SUBSCRIBE may ask for its own.
  TimeMicros agg_window_us = 1'000'000;
  /// Fan-out thread poll timeout (bounds agg-window close latency).
  TimeMicros poll_timeout_us = 10'000;
  /// Accepted TCP connections beyond this are refused.
  std::size_t max_subscribers = 64;
  /// Bound on how long drain() waits for the fan-out thread to flush
  /// subscriber queues at shutdown.
  TimeMicros drain_timeout_us = 2'000'000;

  [[nodiscard]] Status validate() const;
};

/// Options for an in-process subscription.
struct SubscriptionOptions {
  SubscriptionFilter filter;
  /// Aggregation window for subscribe_aggregate (0 = gateway default).
  TimeMicros agg_window_us = 0;
};

/// Gateway-level totals (atomically maintained; readable any time).
struct GatewayStats {
  std::uint64_t records_in = 0;      // records accepted from the pipeline
  std::uint64_t lane_drops = 0;      // records lost to a full fan-out lane
  std::uint64_t tcp_accepted = 0;    // TCP connections accepted, ever
  std::uint64_t tcp_subscribers = 0; // currently live TCP subscriptions
  std::uint64_t tcp_evicted = 0;     // slow-consumer disconnects
  std::uint64_t agg_windows = 0;     // aggregation windows emitted
};

/// Per-subscriber view (local and TCP; entries outlive disconnection so
/// final counters stay readable).
struct SubscriberStats {
  std::string name;
  bool tcp = false;
  bool connected = false;
  std::uint64_t matched = 0;    // records past the filter
  std::uint64_t delivered = 0;  // records/windows handed to the subscriber
  std::uint64_t dropped = 0;    // drop-oldest evictions (TCP only)
  std::uint64_t queued = 0;     // current queue depth (TCP only)
  std::uint64_t agg_windows = 0;
};

/// The subscription gateway. A Sink, so the pipeline still talks to exactly
/// one object; everything behind accept() is subscribers.
class ConsumerGateway final : public Sink {
 public:
  using AggWindowFn = std::function<void(const tp::AggWindow&)>;

  static Result<std::shared_ptr<ConsumerGateway>> create(const GatewayConfig& config);
  ~ConsumerGateway() override;
  ConsumerGateway(const ConsumerGateway&) = delete;
  ConsumerGateway& operator=(const ConsumerGateway&) = delete;

  // ---- Sink (pipeline-facing) ----------------------------------------------
  Status accept(const sensors::Record& record) override;
  Status flush() override;
  void tick(TimeMicros watermark) override;
  Status drain() override;
  [[nodiscard]] const char* name() const noexcept override { return "gateway"; }

  // ---- in-process subscriptions --------------------------------------------
  /// Stream subscription: `sink` sees every record matching the filter,
  /// synchronously on the pipeline's delivery thread (order-preserving).
  /// Fails on a duplicate name.
  Status subscribe(std::string name, std::shared_ptr<Sink> sink,
                   SubscriptionOptions options = {});
  /// Aggregate subscription: `fn` receives each closed window. Runs on the
  /// delivery thread (record-driven closes) or the ordering thread (tick-
  /// driven closes); the gateway serializes the two.
  Status subscribe_aggregate(std::string name, AggWindowFn fn,
                             SubscriptionOptions options = {});
  /// Unregisters an in-process subscription; false if the name is unknown.
  /// "No new records", not a synchronous barrier (an in-flight accept()
  /// may still deliver once from its snapshot).
  bool unsubscribe(const std::string& name);
  [[nodiscard]] std::shared_ptr<Sink> find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t subscriber_count() const;

  // ---- TCP side ------------------------------------------------------------
  [[nodiscard]] bool tcp_enabled() const noexcept { return tcp_running_; }
  /// Actual listener port (resolves port 0).
  [[nodiscard]] std::uint16_t consumer_port() const noexcept { return listen_port_; }

  // ---- observability -------------------------------------------------------
  [[nodiscard]] GatewayStats stats() const;
  [[nodiscard]] std::vector<SubscriberStats> subscriber_stats() const;
  /// Registers a collector emitting gateway totals plus per-subscriber
  /// ism.gateway.sub.<name>.{matched,delivered,dropped,queued} counters into
  /// the 0xFF01 metrics stream.
  void register_metrics(metrics::MetricsRegistry& registry);
  /// Shares the ISM's flight recorder so fan-out pressure events (lane and
  /// queue drops, slow-consumer evictions) land in the same ring. May be
  /// called from any thread; null detaches.
  void set_flight_recorder(metrics::FlightRecorder* flight) noexcept {
    flight_.store(flight, std::memory_order_release);
  }

 private:
  // Counters shared between a live subscriber and its stats entry (the
  // entry outlives disconnection).
  struct SubCounters {
    std::atomic<std::uint64_t> matched{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> queued{0};
    std::atomic<std::uint64_t> agg_windows{0};
    std::atomic<bool> connected{true};
  };
  struct StatsEntry {
    std::string name;
    bool tcp = false;
    std::shared_ptr<SubCounters> counters;
  };

  // ---- aggregation ---------------------------------------------------------
  struct AggKeyState {
    std::uint64_t count = 0;
    TimeMicros last_ts = 0;
    bool has_last = false;
    std::unique_ptr<metrics::Histogram> gaps;
  };
  struct AggState {
    bool open = false;
    TimeMicros window_start = 0;
    TimeMicros window_end = 0;  // exclusive
    std::map<std::pair<NodeId, SensorId>, AggKeyState> keys;
  };
  /// Folds one record into the window state, closing + emitting any window
  /// the record's timestamp has moved past.
  template <typename EmitFn>
  void agg_accumulate(AggState& state, TimeMicros window_us,
                      const sensors::Record& record, EmitFn&& emit);
  /// Emits every open window with window_end <= watermark (INT64_MAX = all).
  template <typename EmitFn>
  void agg_close_due(AggState& state, TimeMicros watermark, EmitFn&& emit);
  static tp::AggWindow agg_seal(AggState& state);

  // ---- in-process subscribers ----------------------------------------------
  struct LocalSub {
    std::string name;
    SubscriptionFilter filter;
    tp::SubscriptionKind kind = tp::SubscriptionKind::stream;
    std::shared_ptr<Sink> sink;  // stream
    AggWindowFn agg_fn;          // aggregate
    TimeMicros window_us = 0;    // aggregate
    std::shared_ptr<SubCounters> counters;
    AggState agg;  // guarded by agg_mutex_
  };
  using LocalList = std::vector<std::shared_ptr<LocalSub>>;

  [[nodiscard]] std::shared_ptr<const LocalList> local_snapshot() const {
    return std::atomic_load_explicit(&locals_, std::memory_order_acquire);
  }
  Status add_local(std::shared_ptr<LocalSub> sub);
  void add_stats_entry(std::string name, bool tcp, std::shared_ptr<SubCounters> counters);

  // ---- TCP internals (fan-out thread only, unless noted) -------------------
  struct TcpSub {
    net::TcpSocket socket;
    net::FrameReader reader;
    net::FrameSendBuffer outbox;
    bool subscribed = false;
    std::uint32_t id = 0;
    std::string name;
    tp::SubscriptionKind kind = tp::SubscriptionKind::stream;
    SubscriptionFilter filter;
    std::size_t queue_cap = 0;
    TimeMicros window_us = 0;
    /// Encoded frames awaiting outbox room; payloads are shared across
    /// subscribers (one encode per record, whatever the fan-out width).
    std::deque<std::shared_ptr<const ByteBuffer>> queue;
    /// Monotonic time the current overrun began; 0 = not overrunning.
    TimeMicros overrun_since = 0;
    /// Never null — service_sub() runs for accepted-but-not-yet-subscribed
    /// connections too; handle_subscribe() replaces this with the counters
    /// shared with the stats entry.
    std::shared_ptr<SubCounters> counters = std::make_shared<SubCounters>();
    AggState agg;
    bool want_writable = false;

    explicit TcpSub(net::TcpSocket s, std::size_t outbox_cap)
        : socket(std::move(s)), outbox(outbox_cap) {}
  };

  explicit ConsumerGateway(const GatewayConfig& config);
  Status start_tcp();
  void fanout_loop();
  void on_listener_ready();
  void on_conn_ready(int fd, net::Readiness ready);
  void handle_frame(int fd, TcpSub& sub, ByteSpan payload);
  void handle_subscribe(int fd, TcpSub& sub, const tp::SubscribeRequest& req);
  void finish_tcp_subscription(TcpSub& sub);
  void pump_lane();
  void route_record(const sensors::Record& record);
  void enqueue_frame(TcpSub& sub, std::shared_ptr<const ByteBuffer> frame);
  void enqueue_agg(TcpSub& sub, const tp::AggWindow& window);
  void service_sub(int fd, TcpSub& sub);
  void update_write_interest(int fd, TcpSub& sub);
  void disconnect(int fd, const char* why);
  void close_due_tcp_windows(TimeMicros watermark);
  void drain_tcp();

  GatewayConfig config_;

  // ---- in-process state ----------------------------------------------------
  mutable std::mutex mutation_mutex_;  // serializes subscribe/unsubscribe
  std::shared_ptr<const LocalList> locals_ = std::make_shared<LocalList>();
  /// Serializes aggregation state between the delivery thread (accept) and
  /// the ordering thread (tick/drain).
  std::mutex agg_mutex_;

  // ---- pipeline → fan-out lane ---------------------------------------------
  std::unique_ptr<SpscQueue<sensors::Record>> lane_;

  // ---- fan-out thread ------------------------------------------------------
  std::atomic<bool> tcp_running_{false};
  std::atomic<bool> stop_{false};
  net::TcpListener listener_;
  std::uint16_t listen_port_ = 0;
  net::WakeupPipe wakeup_;
  std::unique_ptr<net::Poller> poller_;
  std::thread fanout_thread_;
  std::map<int, std::unique_ptr<TcpSub>> conns_;  // fan-out thread only
  std::uint32_t next_sub_id_ = 1;                 // fan-out thread only
  /// Tick watermark handed to the fan-out thread (tick() stores, loop reads).
  std::atomic<TimeMicros> tcp_tick_watermark_{std::numeric_limits<TimeMicros>::min()};
  // drain() handshake with the fan-out thread.
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::atomic<bool> drain_requested_{false};
  bool drain_done_ = false;  // guarded by drain_mutex_

  /// Shared flight recorder (the ISM's ring); null until wired.
  std::atomic<metrics::FlightRecorder*> flight_{nullptr};

  // ---- stats ---------------------------------------------------------------
  std::atomic<std::uint64_t> records_in_{0};
  std::atomic<std::uint64_t> lane_drops_{0};
  std::atomic<std::uint64_t> tcp_accepted_{0};
  std::atomic<std::uint64_t> tcp_subscriber_count_{0};
  std::atomic<std::uint64_t> tcp_evicted_{0};
  std::atomic<std::uint64_t> agg_windows_{0};
  mutable std::mutex stats_mutex_;
  std::vector<StatsEntry> stats_entries_;  // guarded by stats_mutex_
};

}  // namespace brisk::ism
